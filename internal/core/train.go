package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/stats"
)

// paramCache holds the softplus-transformed parameters (and their
// gradients) for one epoch. The transforms depend only on the raw
// parameters, which change once per epoch, so computing them per instance —
// as the scalar fuse/backprop path does — wasted a softplus and its exp per
// fired feature per instance. Values are the identical floats the scalar
// path computes, so cached evaluation is bit-identical.
type paramCache struct {
	w    []float64 // softplus(rho)
	gw   []float64 // softplusGrad(rho)
	rsd  []float64 // softplus(rsdRaw)
	grsd []float64 // softplusGrad(rsdRaw)
	sig  []float64 // rsd * mu (the feature sigma)

	alpha, beta   float64
	galpha, gbeta float64

	bsig    []float64 // softplus(bucketR)
	gbucket []float64 // softplusGrad(bucketR)
}

func (m *Model) newParamCache() *paramCache {
	F := len(m.features)
	return &paramCache{
		w: make([]float64, F), gw: make([]float64, F),
		rsd: make([]float64, F), grsd: make([]float64, F), sig: make([]float64, F),
		bsig: make([]float64, len(m.bucketR)), gbucket: make([]float64, len(m.bucketR)),
	}
}

func (m *Model) fillParamCache(pc *paramCache) {
	for j := range m.rho {
		pc.w[j] = stats.Softplus(m.rho[j])
		pc.gw[j] = stats.SoftplusGrad(m.rho[j])
		pc.rsd[j] = stats.Softplus(m.rsdRaw[j])
		pc.grsd[j] = stats.SoftplusGrad(m.rsdRaw[j])
		pc.sig[j] = pc.rsd[j] * m.features[j].Mu
	}
	pc.alpha = stats.Softplus(m.alphaR)
	pc.beta = stats.Softplus(m.betaR)
	pc.galpha = stats.SoftplusGrad(m.alphaR)
	pc.gbeta = stats.SoftplusGrad(m.betaR)
	for b := range m.bucketR {
		pc.bsig[b] = stats.Softplus(m.bucketR[b])
		pc.gbucket[b] = stats.SoftplusGrad(m.bucketR[b])
	}
}

// fuseCached is fuse with the epoch's parameter cache; it computes the same
// floats as the scalar path.
func (m *Model) fuseCached(inst Instance, pc *paramCache) fusion {
	var f fusion
	d := inst.Prob - 0.5
	f.wc = -math.Exp(-d*d/(2*pc.alpha*pc.alpha)) + pc.beta + 1
	f.bucket = m.cal.Bucket(inst.Prob)
	f.sigC = pc.bsig[f.bucket] * inst.Prob
	f.S = f.wc
	numMu := f.wc * inst.Prob
	numVar := f.wc * f.wc * f.sigC * f.sigC
	for _, j := range inst.Fired {
		w := pc.w[j]
		muJ := m.features[j].Mu
		sigJ := pc.sig[j]
		f.S += w
		numMu += w * muJ
		numVar += w * w * sigJ * sigJ
	}
	f.mu = numMu / f.S
	if m.cfg.NoVariance {
		return f
	}
	f.vr = numVar / (f.S * f.S)
	f.sigma = math.Sqrt(f.vr)
	return f
}

// fitBlock is the instance-block granularity of parallel backpropagation.
// Blocks bound the per-instance gradient shard memory; the shards merge in
// instance order, so the accumulated gradient is bit-identical to the
// serial loop whatever the worker count.
const fitBlock = 64

// Fit tunes the model's learnable parameters — rule weights, rule RSDs, the
// influence-function shape (alpha, beta) and the per-bucket classifier RSDs
// — to rank mislabeled instances above correct ones (Section 6.2). The loss
// is the pairwise cross-entropy of Eq. 15 over sampled (mislabeled,
// correct) instance pairs, with the posterior of Eq. 13; gradients are
// analytic (chain rule through the portfolio aggregation and the smooth VaR
// surrogate) and applied with Adam. L1+L2 regularization is added on the
// rule weights (Section 6.2.3).
//
// The per-epoch forward pass and backpropagation run in parallel across
// instances: forward writes are per-instance slots, and backprop
// accumulates per-instance gradient shards that are merged in instance
// order — both bit-identical to the serial loop for a fixed seed,
// independent of GOMAXPROCS.
func (m *Model) Fit(insts []Instance, mislabeled []bool) error {
	return m.FitCtx(context.Background(), insts, mislabeled, nil)
}

// FitCtx is Fit with cooperative cancellation and progress reporting. The
// context is checked at each epoch boundary: a canceled context aborts the
// remaining epochs and returns ctx.Err(), leaving the model with the
// parameters of the last completed epoch (still usable for scoring, just
// undertrained). progress (optional) is invoked after each completed epoch
// with (epochsDone, epochsTotal). A nil-error FitCtx run is bit-identical
// to Fit: the boundary checks consume no randomness.
func (m *Model) FitCtx(ctx context.Context, insts []Instance, mislabeled []bool, progress func(done, total int)) error {
	if len(insts) != len(mislabeled) {
		return errMismatch(len(insts), len(mislabeled))
	}
	var misIdx, corIdx []int
	for i, bad := range mislabeled {
		if bad {
			misIdx = append(misIdx, i)
		} else {
			corIdx = append(corIdx, i)
		}
	}
	if len(misIdx) == 0 || len(corIdx) == 0 {
		return ErrNoTrainingSignal
	}

	P := m.paramCount()
	opt := newAdam(P, m.cfg.LR)
	rng := stats.NewRNG(m.cfg.Seed)
	pc := m.newParamCache()
	grads := make([]float64, P)
	gammas := make([]float64, len(insts))
	coef := make([]float64, len(insts))
	shards := make([]float64, fitBlock*P) // per-instance gradient shards, zeroed outside touched slots

	allPairs := len(misIdx) * len(corIdx)
	sample := m.cfg.PairSample
	if sample > allPairs {
		sample = allPairs
	}

	for epoch := 0; epoch < m.cfg.Epochs; epoch++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		m.fillParamCache(pc)

		// Forward: surrogate VaR for every instance, in parallel
		// (disjoint per-instance writes).
		par.For(len(insts), func(i int) {
			gammas[i] = m.surrogate(m.fuseCached(insts[i], pc), insts[i].Label)
		})

		// Pairwise loss coefficients dL/dgamma_i accumulated per instance.
		// Kept serial: the sampled variant consumes the RNG sequentially and
		// the dense variant's accumulation order is part of the
		// bit-reproducibility contract.
		for i := range coef {
			coef[i] = 0
		}
		if allPairs == sample {
			for _, mi := range misIdx {
				for _, ci := range corIdx {
					s := stats.Sigmoid(gammas[mi] - gammas[ci])
					coef[mi] += s - 1 // p̄ = 1 for (mislabeled, correct)
					coef[ci] += 1 - s
				}
			}
		} else {
			for k := 0; k < sample; k++ {
				mi := misIdx[rng.Intn(len(misIdx))]
				ci := corIdx[rng.Intn(len(corIdx))]
				s := stats.Sigmoid(gammas[mi] - gammas[ci])
				coef[mi] += s - 1
				coef[ci] += 1 - s
			}
		}
		scale := 1 / float64(sample)

		// Backward: per-instance gradient shards computed in parallel
		// block by block, merged serially in instance order.
		for i := range grads {
			grads[i] = 0
		}
		for lo := 0; lo < len(insts); lo += fitBlock {
			hi := lo + fitBlock
			if hi > len(insts) {
				hi = len(insts)
			}
			par.For(hi-lo, func(k int) {
				i := lo + k
				if coef[i] != 0 {
					m.backpropCached(insts[i], coef[i]*scale, shards[k*P:(k+1)*P], pc)
				}
			})
			for k := 0; k < hi-lo; k++ {
				i := lo + k
				if coef[i] != 0 {
					m.mergeShard(insts[i], shards[k*P:(k+1)*P], grads)
				}
			}
		}
		m.addRegGradsCached(grads, pc)
		m.applyStep(opt, grads)
		if progress != nil {
			progress(epoch+1, m.cfg.Epochs)
		}
	}
	return nil
}

// Loss returns the current mean pairwise cross-entropy over all
// (mislabeled, correct) pairs — the quantity Fit minimizes (Eq. 15).
func (m *Model) Loss(insts []Instance, mislabeled []bool) float64 {
	var misIdx, corIdx []int
	for i, bad := range mislabeled {
		if bad {
			misIdx = append(misIdx, i)
		} else {
			corIdx = append(corIdx, i)
		}
	}
	if len(misIdx) == 0 || len(corIdx) == 0 {
		return 0
	}
	gammas := make([]float64, len(insts))
	for i, inst := range insts {
		gammas[i] = m.surrogate(m.fuse(inst), inst.Label)
	}
	sum := 0.0
	for _, mi := range misIdx {
		for _, ci := range corIdx {
			s := stats.Sigmoid(gammas[mi] - gammas[ci])
			if s < 1e-15 {
				s = 1e-15
			}
			sum += -math.Log(s) // p̄ = 1
		}
	}
	return sum / float64(len(misIdx)*len(corIdx))
}

// Parameter layout in the flat gradient/optimizer vector:
// [rho_0..rho_{F-1}, rsdRaw_0..rsdRaw_{F-1}, alphaR, betaR, bucketR_0..].
func (m *Model) paramCount() int { return 2*len(m.features) + 2 + len(m.bucketR) }

func (m *Model) applyStep(opt *adam, grads []float64) {
	F := len(m.features)
	opt.step(grads)
	for j := 0; j < F; j++ {
		m.rho[j] -= opt.delta(j)
		m.rsdRaw[j] -= opt.delta(F + j)
	}
	m.alphaR -= opt.delta(2 * F)
	m.betaR -= opt.delta(2*F + 1)
	for b := range m.bucketR {
		m.bucketR[b] -= opt.delta(2*F + 2 + b)
	}
}

// backpropCached accumulates d(coef*gamma)/dparam for one instance into the
// shard (a scratch gradient vector whose touched slots are zero on entry;
// mergeShard re-zeroes them after folding into the global gradient). The
// touched slots are exactly: the fired features' weight and RSD slots, the
// two influence slots, and the instance's bucket slot. Firing lists contain
// each feature at most once, so each slot is written once.
// See DESIGN.md "Risk-model math as implemented" for the derivation.
func (m *Model) backpropCached(inst Instance, coef float64, shard []float64, pc *paramCache) {
	f := m.fuseCached(inst, pc)
	F := len(m.features)

	sgnMu := 1.0
	if inst.Label {
		sgnMu = -1 // gamma = (1-mu) + z*sigma
	}
	sigma := f.sigma
	if sigma < 1e-9 {
		sigma = 1e-9
	}
	dGdMu := coef * sgnMu
	dGdV := coef * m.z / (2 * sigma) // via dsigma/dV = 1/(2 sigma)
	if m.cfg.NoVariance {
		dGdV = 0 // sigma is pinned to zero; no gradient flows through it
	}

	// Rule features.
	for _, j := range inst.Fired {
		w := pc.w[j]
		muJ := m.features[j].Mu
		sigJ := pc.sig[j]

		dMudW := (muJ - f.mu) / f.S
		dVdW := (2*w*sigJ*sigJ)/(f.S*f.S) - 2*f.vr/f.S
		dW := dGdMu*dMudW + dGdV*dVdW
		shard[j] += dW * pc.gw[j]

		dVdSigJ := 2 * w * w * sigJ / (f.S * f.S)
		dRSD := dGdV * dVdSigJ * muJ
		shard[F+j] += dRSD * pc.grsd[j]
	}

	// Classifier-output feature: weight wc = beta + 1 - E with
	// E = exp(-d^2/(2 alpha^2)), expectation p, sigma = bucketRSD * p.
	p := inst.Prob
	dMudWc := (p - f.mu) / f.S
	dVdWc := (2*f.wc*f.sigC*f.sigC)/(f.S*f.S) - 2*f.vr/f.S
	dWc := dGdMu*dMudWc + dGdV*dVdWc

	d := p - 0.5
	E := math.Exp(-d * d / (2 * pc.alpha * pc.alpha))
	dWcdAlpha := -E * d * d / (pc.alpha * pc.alpha * pc.alpha)
	shard[2*F] += dWc * dWcdAlpha * pc.galpha
	shard[2*F+1] += dWc * pc.gbeta // dwc/dbeta = 1

	dVdSigC := 2 * f.wc * f.wc * f.sigC / (f.S * f.S)
	dBucket := dGdV * dVdSigC * p
	shard[2*F+2+f.bucket] += dBucket * pc.gbucket[f.bucket]
}

// mergeShard folds one instance's gradient shard into the global gradient,
// visiting the touched slots in the same order the serial loop wrote them,
// and re-zeroes the shard for reuse.
func (m *Model) mergeShard(inst Instance, shard, grads []float64) {
	F := len(m.features)
	for _, j := range inst.Fired {
		grads[j] += shard[j]
		shard[j] = 0
		grads[F+j] += shard[F+j]
		shard[F+j] = 0
	}
	grads[2*F] += shard[2*F]
	shard[2*F] = 0
	grads[2*F+1] += shard[2*F+1]
	shard[2*F+1] = 0
	b := 2*F + 2 + m.cal.Bucket(inst.Prob)
	grads[b] += shard[b]
	shard[b] = 0
}

// addRegGradsCached adds the L1+L2 penalty gradients on the rule weights
// using the epoch's cached transforms.
func (m *Model) addRegGradsCached(grads []float64, pc *paramCache) {
	for j := range m.rho {
		g := m.cfg.L1 + 2*m.cfg.L2*pc.w[j] // d/dw (L1*w + L2*w^2); w > 0 so |w| = w
		grads[j] += g * pc.gw[j]
	}
}

// adam is a minimal Adam optimizer over a flat parameter vector; step
// computes the per-parameter deltas which the model then applies to its
// structured parameters.
type adam struct {
	lr      float64
	t       int
	mv, vv  []float64
	deltas  []float64
	b1, b2  float64
	epsilon float64
}

func newAdam(n int, lr float64) *adam {
	return &adam{
		lr: lr, mv: make([]float64, n), vv: make([]float64, n),
		deltas: make([]float64, n), b1: 0.9, b2: 0.999, epsilon: 1e-8,
	}
}

func (a *adam) step(grads []float64) {
	a.t++
	c1 := 1 - math.Pow(a.b1, float64(a.t))
	c2 := 1 - math.Pow(a.b2, float64(a.t))
	for i, g := range grads {
		a.mv[i] = a.b1*a.mv[i] + (1-a.b1)*g
		a.vv[i] = a.b2*a.vv[i] + (1-a.b2)*g*g
		a.deltas[i] = a.lr * (a.mv[i] / c1) / (math.Sqrt(a.vv[i]/c2) + a.epsilon)
	}
}

func (a *adam) delta(i int) float64 { return a.deltas[i] }

func errMismatch(a, b int) error {
	return fmt.Errorf("core: %d instances vs %d labels", a, b)
}
