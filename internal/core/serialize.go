package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/rules"
)

// modelJSON is the on-disk form of a trained risk model. Raw (softplus
// space) parameters are stored so a round trip is bit-exact.
type modelJSON struct {
	Version  int           `json:"version"`
	Config   Config        `json:"config"`
	Features []featureJSON `json:"features"`
	Rho      []float64     `json:"rho"`
	RSDRaw   []float64     `json:"rsd_raw"`
	AlphaR   float64       `json:"alpha_raw"`
	BetaR    float64       `json:"beta_raw"`
	BucketR  []float64     `json:"bucket_raw"`
}

type featureJSON struct {
	Rule rules.Rule `json:"rule"`
	Mu   float64    `json:"mu"`
}

const serializationVersion = 1

// Save writes the model (features, priors and learned parameters) as JSON.
func (m *Model) Save(w io.Writer) error {
	out := modelJSON{
		Version:  serializationVersion,
		Config:   m.cfg,
		Features: make([]featureJSON, len(m.features)),
		Rho:      m.rho,
		RSDRaw:   m.rsdRaw,
		AlphaR:   m.alphaR,
		BetaR:    m.betaR,
		BucketR:  m.bucketR,
	}
	for i, f := range m.features {
		out.Features[i] = featureJSON{Rule: f.Rule, Mu: f.Mu}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a model written by Save. The loaded model scores identically
// to the saved one and can be trained further.
func Load(r io.Reader) (*Model, error) {
	var in modelJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	if in.Version != serializationVersion {
		return nil, fmt.Errorf("core: unsupported model version %d", in.Version)
	}
	feats := make([]Feature, len(in.Features))
	for i, f := range in.Features {
		feats[i] = Feature{Rule: f.Rule, Mu: f.Mu}
	}
	m, err := New(feats, in.Config)
	if err != nil {
		return nil, err
	}
	if len(in.Rho) != len(m.rho) || len(in.RSDRaw) != len(m.rsdRaw) || len(in.BucketR) != len(m.bucketR) {
		return nil, fmt.Errorf("core: parameter arity mismatch in saved model")
	}
	copy(m.rho, in.Rho)
	copy(m.rsdRaw, in.RSDRaw)
	m.alphaR = in.AlphaR
	m.betaR = in.BetaR
	copy(m.bucketR, in.BucketR)
	return m, nil
}
