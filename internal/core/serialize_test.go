package core

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	m, _ := New(mkFeatures(), Config{Epochs: 60, Seed: 4})
	insts, bad := syntheticRiskData(200, 6)
	if err := m.Fit(insts, bad); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-exact scoring after the round trip.
	for i, inst := range insts {
		if got, want := loaded.Risk(inst), m.Risk(inst); got != want {
			t.Fatalf("instance %d: loaded risk %v != original %v", i, got, want)
		}
	}
	// Parameters survive.
	if loaded.Weight(0) != m.Weight(0) || loaded.RSD(1) != m.RSD(1) {
		t.Error("learned parameters did not round trip")
	}
	la, lb := loaded.InfluenceParams()
	oa, ob := m.InfluenceParams()
	if la != oa || lb != ob {
		t.Error("influence parameters did not round trip")
	}
	// Loaded models can continue training.
	if err := loaded.Fit(insts, bad); err != nil {
		t.Fatal(err)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("unknown version should fail")
	}
	// Arity mismatch: one feature, two rho entries.
	bad := `{"version":1,"config":{},"features":[{"rule":{"Predicates":null,"Match":false,"Support":1,"Purity":1},"mu":0.5}],"rho":[0,0],"rsd_raw":[0],"bucket_raw":[]}`
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("arity mismatch should fail")
	}
	// Invalid feature expectation.
	badMu := `{"version":1,"config":{},"features":[{"rule":{"Predicates":null,"Match":false,"Support":1,"Purity":1},"mu":0}],"rho":[0],"rsd_raw":[0],"bucket_raw":[]}`
	if _, err := Load(strings.NewReader(badMu)); err == nil {
		t.Error("invalid mu should fail")
	}
}

func TestSaveIsHumanReadable(t *testing.T) {
	m, _ := New(mkFeatures(), Config{})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"version"`, `"features"`, `"rho"`, "year.num_diff"} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized model missing %q", want)
		}
	}
}
