package core

import (
	"math"
	"testing"

	"repro/internal/eval"
	"repro/internal/rules"
	"repro/internal/stats"
)

// mkFeatures builds two archetypal risk features: a high-confidence
// unmatching rule (mu near 0) and a high-confidence matching rule (mu near 1).
func mkFeatures() []Feature {
	unmatch := rules.Rule{
		Predicates: []rules.Predicate{{Metric: 0, Name: "year.num_diff", Op: rules.GT, Threshold: 0.5}},
		Match:      false, Support: 200, Purity: 0.98,
	}
	match := rules.Rule{
		Predicates: []rules.Predicate{{Metric: 1, Name: "title.jaccard", Op: rules.GT, Threshold: 0.9}},
		Match:      true, Support: 120, Purity: 0.96,
	}
	return []Feature{
		{Rule: unmatch, Mu: 0.02},
		{Rule: match, Mu: 0.95},
	}
}

func TestNewValidatesExpectations(t *testing.T) {
	if _, err := New([]Feature{{Mu: 0}}, Config{}); err == nil {
		t.Error("mu=0 should be rejected")
	}
	if _, err := New([]Feature{{Mu: 1}}, Config{}); err == nil {
		t.Error("mu=1 should be rejected")
	}
	if _, err := New(mkFeatures(), Config{}); err != nil {
		t.Errorf("valid features rejected: %v", err)
	}
}

func TestInfluenceFunctionShape(t *testing.T) {
	m, _ := New(nil, Config{})
	// Matches Figure 8: weight grows with output extremeness, symmetric
	// around 0.5, minimum at 0.5 with value beta + 1 - 1 = beta.
	mid := m.Influence(0.5)
	lo := m.Influence(0.05)
	hi := m.Influence(0.95)
	if !(lo > mid && hi > mid) {
		t.Errorf("influence not U-shaped: f(0.05)=%f f(0.5)=%f f(0.95)=%f", lo, mid, hi)
	}
	if math.Abs(lo-hi) > 1e-9 {
		t.Errorf("influence not symmetric: %f vs %f", lo, hi)
	}
	_, beta := m.InfluenceParams()
	if math.Abs(mid-beta) > 1e-9 {
		t.Errorf("f(0.5) = %f, want beta = %f", mid, beta)
	}
	alpha, _ := m.InfluenceParams()
	if math.Abs(alpha-0.2) > 1e-6 || math.Abs(beta-10) > 1e-6 {
		t.Errorf("default influence params (%f,%f), want (0.2,10)", alpha, beta)
	}
}

func TestAssessPortfolioAggregation(t *testing.T) {
	m, _ := New(mkFeatures(), Config{})

	// Pair labeled matching (p=0.9) but firing the unmatching rule: the
	// rule drags mu down, and risk must exceed a pair without the rule.
	conflicted := Instance{Fired: []int{0}, Prob: 0.9, Label: true}
	clean := Instance{Fired: nil, Prob: 0.9, Label: true}
	ac := m.Assess(conflicted)
	al := m.Assess(clean)
	if ac.Mu >= al.Mu {
		t.Errorf("unmatching rule should lower mu: %f vs %f", ac.Mu, al.Mu)
	}
	if ac.Risk <= al.Risk {
		t.Errorf("conflicted pair should be riskier: %f vs %f", ac.Risk, al.Risk)
	}
	// Supporting evidence lowers risk: matching rule on matching label.
	supported := Instance{Fired: []int{1}, Prob: 0.9, Label: true}
	as := m.Assess(supported)
	if as.Risk > al.Risk+1e-9 {
		t.Errorf("supporting rule should not raise risk: %f vs %f", as.Risk, al.Risk)
	}
	// Mu is always a valid probability.
	for _, a := range []Assessment{ac, al, as} {
		if a.Mu < 0 || a.Mu > 1 || a.Sigma < 0 || a.Risk < 0 || a.Risk > 1 {
			t.Errorf("invalid assessment %+v", a)
		}
	}
}

func TestVarianceRaisesRisk(t *testing.T) {
	feats := mkFeatures()
	lowVar, _ := New(feats, Config{InitRSD: 0.01})
	highVar, _ := New(feats, Config{InitRSD: 0.8})
	inst := Instance{Fired: []int{0}, Prob: 0.4, Label: false}
	lo := lowVar.Assess(inst)
	hi := highVar.Assess(inst)
	if hi.Sigma <= lo.Sigma {
		t.Fatalf("higher RSD must raise sigma: %f vs %f", hi.Sigma, lo.Sigma)
	}
	if hi.Risk <= lo.Risk {
		t.Errorf("fluctuation risk not captured: risk %f (sigma %f) vs %f (sigma %f)",
			hi.Risk, hi.Sigma, lo.Risk, lo.Sigma)
	}
}

func TestAmbiguousOutputIsRiskier(t *testing.T) {
	m, _ := New(nil, Config{})
	ambiguous := m.Risk(Instance{Prob: 0.55, Label: true})
	confident := m.Risk(Instance{Prob: 0.99, Label: true})
	if ambiguous <= confident {
		t.Errorf("ambiguous output should be riskier: %f vs %f", ambiguous, confident)
	}
	// Same on the unmatching side.
	ambiguousU := m.Risk(Instance{Prob: 0.45, Label: false})
	confidentU := m.Risk(Instance{Prob: 0.01, Label: false})
	if ambiguousU <= confidentU {
		t.Errorf("unmatching side: %f vs %f", ambiguousU, confidentU)
	}
}

func TestSurrogateAgreesWithTruncatedRanking(t *testing.T) {
	m, _ := New(mkFeatures(), Config{})
	mu, _ := New(mkFeatures(), Config{UntruncatedInference: true})
	insts := []Instance{
		{Fired: []int{0}, Prob: 0.9, Label: true},
		{Fired: nil, Prob: 0.9, Label: true},
		{Fired: []int{1}, Prob: 0.2, Label: false},
		{Fired: nil, Prob: 0.05, Label: false},
		{Fired: []int{0, 1}, Prob: 0.5, Label: true},
	}
	tr := m.RiskAll(insts)
	su := mu.RiskAll(insts)
	// Pairwise order agreement between truncated and surrogate scores.
	for i := 0; i < len(insts); i++ {
		for j := 0; j < len(insts); j++ {
			if tr[i] > tr[j]+1e-9 && su[i] < su[j]-1e-9 {
				t.Errorf("ranking disagreement between truncated and surrogate at (%d,%d)", i, j)
			}
		}
	}
}

func TestExplain(t *testing.T) {
	m, _ := New(mkFeatures(), Config{})
	inst := Instance{Fired: []int{0, 1}, Prob: 0.7, Label: true}
	exp := m.Explain(inst)
	if len(exp) != 3 {
		t.Fatalf("explanation has %d contributions, want 3", len(exp))
	}
	total := 0.0
	for _, c := range exp {
		total += c.Share
		if c.Share < 0 || c.Share > 1 {
			t.Errorf("share %f out of range", c.Share)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("shares sum to %f, want 1", total)
	}
	for i := 1; i < len(exp); i++ {
		if exp[i].Share > exp[i-1].Share {
			t.Error("explanation not sorted by share")
		}
	}
	// Default influence beta=10 dominates two unit rule weights.
	if exp[0].Description == "" || exp[0].Share < 0.5 {
		t.Errorf("classifier output should dominate: %+v", exp[0])
	}
}

// syntheticRiskData fabricates instances whose mislabels are detectable
// through rule signals: pairs firing feature 0 (unmatch rule) but labeled
// matching are usually mislabeled, etc.
func syntheticRiskData(n int, seed uint64) ([]Instance, []bool) {
	rng := stats.NewRNG(seed)
	insts := make([]Instance, n)
	bad := make([]bool, n)
	for i := range insts {
		p := rng.Float64()
		label := p >= 0.5
		var fired []int
		mis := false
		switch {
		case rng.Float64() < 0.25: // conflicted: unmatch rule fires
			fired = append(fired, 0)
			if label {
				mis = rng.Float64() < 0.85 // usually mislabeled
			} else {
				mis = rng.Float64() < 0.05
			}
		case rng.Float64() < 0.3: // match rule fires
			fired = append(fired, 1)
			if !label {
				mis = rng.Float64() < 0.8
			} else {
				mis = rng.Float64() < 0.05
			}
		default:
			mis = rng.Float64() < 0.08
		}
		insts[i] = Instance{Fired: fired, Prob: p, Label: label}
		bad[i] = mis
	}
	return insts, bad
}

func TestFitImprovesAUROCAndLoss(t *testing.T) {
	feats := mkFeatures()
	m, _ := New(feats, Config{Epochs: 300, LR: 0.05, Seed: 2})
	insts, bad := syntheticRiskData(400, 3)
	before := eval.AUROC(m.RiskAll(insts), bad)
	lossBefore := m.Loss(insts, bad)
	if err := m.Fit(insts, bad); err != nil {
		t.Fatal(err)
	}
	after := eval.AUROC(m.RiskAll(insts), bad)
	lossAfter := m.Loss(insts, bad)
	if lossAfter >= lossBefore {
		t.Errorf("loss did not decrease: %f -> %f", lossBefore, lossAfter)
	}
	if after <= before {
		t.Errorf("AUROC did not improve: %f -> %f", before, after)
	}
	if after < 0.75 {
		t.Errorf("trained AUROC %f < 0.75 on synthetic risk data", after)
	}
	// Generalization: fresh instances from the same process.
	testInsts, testBad := syntheticRiskData(400, 77)
	testAUROC := eval.AUROC(m.RiskAll(testInsts), testBad)
	if testAUROC < 0.7 {
		t.Errorf("held-out AUROC %f < 0.7", testAUROC)
	}
}

func TestFitErrors(t *testing.T) {
	m, _ := New(mkFeatures(), Config{Epochs: 1})
	if err := m.Fit([]Instance{{}}, []bool{true, false}); err == nil {
		t.Error("length mismatch should fail")
	}
	if err := m.Fit([]Instance{{}, {}}, []bool{false, false}); err != ErrNoTrainingSignal {
		t.Errorf("want ErrNoTrainingSignal, got %v", err)
	}
	if err := m.Fit([]Instance{{}, {}}, []bool{true, true}); err != ErrNoTrainingSignal {
		t.Errorf("want ErrNoTrainingSignal, got %v", err)
	}
}

func TestFitDeterministic(t *testing.T) {
	insts, bad := syntheticRiskData(150, 5)
	run := func() []float64 {
		m, _ := New(mkFeatures(), Config{Epochs: 50, Seed: 9})
		if err := m.Fit(insts, bad); err != nil {
			t.Fatal(err)
		}
		return m.RiskAll(insts)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training not deterministic")
		}
	}
}

// TestGradientsMatchFiniteDifferences validates the analytic chain rule in
// backprop against numeric differentiation of the surrogate gamma.
func TestGradientsMatchFiniteDifferences(t *testing.T) {
	m, _ := New(mkFeatures(), Config{})
	insts := []Instance{
		{Fired: []int{0, 1}, Prob: 0.73, Label: true},
		{Fired: []int{0}, Prob: 0.31, Label: false},
		{Fired: nil, Prob: 0.5, Label: true},
	}
	for _, inst := range insts {
		grads := make([]float64, m.paramCount())
		pc := m.newParamCache()
		m.fillParamCache(pc)
		m.backpropCached(inst, 1.0, grads, pc)

		gamma := func() float64 { return m.surrogate(m.fuse(inst), inst.Label) }
		check := func(name string, param *float64, analytic float64) {
			t.Helper()
			const eps = 1e-6
			orig := *param
			*param = orig + eps
			up := gamma()
			*param = orig - eps
			down := gamma()
			*param = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic) > 1e-5*(1+math.Abs(numeric)) {
				t.Errorf("%s: analytic %.8f vs numeric %.8f (inst %+v)", name, analytic, numeric, inst)
			}
		}
		F := len(m.features)
		for j := 0; j < F; j++ {
			check("rho", &m.rho[j], grads[j])
			check("rsd", &m.rsdRaw[j], grads[F+j])
		}
		check("alpha", &m.alphaR, grads[2*F])
		check("beta", &m.betaR, grads[2*F+1])
		b := m.cal.Bucket(inst.Prob)
		check("bucket", &m.bucketR[b], grads[2*F+2+b])
	}
}

func TestAccessors(t *testing.T) {
	m, _ := New(mkFeatures(), Config{InitWeight: 2, InitRSD: 0.3})
	if m.NumFeatures() != 2 {
		t.Errorf("NumFeatures = %d", m.NumFeatures())
	}
	if got := m.Feature(0).Mu; got != 0.02 {
		t.Errorf("Feature(0).Mu = %f", got)
	}
	if math.Abs(m.Weight(0)-2) > 1e-9 {
		t.Errorf("Weight = %f, want 2", m.Weight(0))
	}
	if math.Abs(m.RSD(1)-0.3) > 1e-9 {
		t.Errorf("RSD = %f, want 0.3", m.RSD(1))
	}
}

func TestTopFeatures(t *testing.T) {
	m, _ := New(mkFeatures(), Config{Epochs: 150, LR: 0.05, Seed: 3})
	insts, bad := syntheticRiskData(300, 8)
	if err := m.Fit(insts, bad); err != nil {
		t.Fatal(err)
	}
	top := m.TopFeatures(0)
	if len(top) != 2 {
		t.Fatalf("TopFeatures(0) = %d entries, want all 2", len(top))
	}
	if top[0].Weight < top[1].Weight {
		t.Error("TopFeatures not sorted by weight")
	}
	one := m.TopFeatures(1)
	if len(one) != 1 || one[0].Weight != top[0].Weight {
		t.Error("TopFeatures(1) should return the heaviest feature")
	}
	for _, rf := range top {
		if rf.Weight <= 0 || rf.RSD <= 0 {
			t.Errorf("non-positive learned parameters: %+v", rf)
		}
	}
}

func TestBuildHelpers(t *testing.T) {
	rs := []rules.Rule{mkFeatures()[0].Rule}
	sts := []rules.Stat{{Support: 10, Matches: 1, MatchRate: 2.0 / 12.0}}
	feats := BuildFeatures(rs, sts)
	if len(feats) != 1 || feats[0].Mu != 2.0/12.0 {
		t.Errorf("BuildFeatures = %+v", feats)
	}
}
