package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

// randInstance maps arbitrary quick-generated values into a valid instance
// over nFeatures features.
func randInstance(seed uint64, nFeatures int) Instance {
	rng := stats.NewRNG(seed)
	var fired []int
	for j := 0; j < nFeatures; j++ {
		if rng.Float64() < 0.4 {
			fired = append(fired, j)
		}
	}
	p := rng.Float64()
	return Instance{Fired: fired, Prob: p, Label: p >= 0.5}
}

func randModel(seed uint64) *Model {
	rng := stats.NewRNG(seed)
	n := 1 + rng.Intn(6)
	feats := make([]Feature, n)
	for j := range feats {
		feats[j] = Feature{Mu: 0.01 + 0.98*rng.Float64()}
	}
	m, err := New(feats, Config{
		InitWeight: 0.1 + 3*rng.Float64(),
		InitRSD:    0.05 + rng.Float64(),
		Theta:      0.85 + 0.1*rng.Float64(),
	})
	if err != nil {
		panic(err)
	}
	return m
}

func TestPropertyRiskAlwaysValid(t *testing.T) {
	f := func(seed uint64) bool {
		m := randModel(seed)
		for k := uint64(0); k < 20; k++ {
			inst := randInstance(seed+k, m.NumFeatures())
			a := m.Assess(inst)
			if math.IsNaN(a.Risk) || a.Risk < 0 || a.Risk > 1 {
				return false
			}
			if math.IsNaN(a.Mu) || a.Mu < 0 || a.Mu > 1 {
				return false
			}
			if a.Sigma < 0 || math.IsNaN(a.Sigma) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyExplanationSharesSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		m := randModel(seed)
		inst := randInstance(seed, m.NumFeatures())
		total := 0.0
		for _, c := range m.Explain(inst) {
			if c.Share < 0 || c.Share > 1 {
				return false
			}
			total += c.Share
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyMuIsConvexCombination(t *testing.T) {
	// The fused expectation must lie within the span of the contributing
	// feature expectations and the classifier output.
	f := func(seed uint64) bool {
		m := randModel(seed)
		inst := randInstance(seed^0xABCD, m.NumFeatures())
		lo, hi := inst.Prob, inst.Prob
		for _, j := range inst.Fired {
			mu := m.Feature(j).Mu
			if mu < lo {
				lo = mu
			}
			if mu > hi {
				hi = mu
			}
		}
		a := m.Assess(inst)
		return a.Mu >= lo-1e-9 && a.Mu <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRiskMonotoneInTheta(t *testing.T) {
	// For unmatching labels the VaR quantile grows with theta.
	f := func(seed uint64) bool {
		feats := []Feature{{Mu: 0.5}}
		lowTheta, _ := New(feats, Config{Theta: 0.8})
		highTheta, _ := New(feats, Config{Theta: 0.95})
		inst := randInstance(seed, 1)
		inst.Label = false
		return highTheta.Risk(inst) >= lowTheta.Risk(inst)-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPropertyConflictRaisesRisk(t *testing.T) {
	// Adding an unmatching rule (low mu) to a pair labeled matching never
	// lowers its risk; adding a matching rule (high mu) never raises it.
	feats := []Feature{{Mu: 0.02}, {Mu: 0.97}}
	m, _ := New(feats, Config{})
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		p := 0.5 + 0.49*rng.Float64() // labeled matching
		bare := Instance{Prob: p, Label: true}
		conflicted := Instance{Fired: []int{0}, Prob: p, Label: true}
		supported := Instance{Fired: []int{1}, Prob: p, Label: true}
		if m.Risk(conflicted) < m.Risk(bare)-1e-9 {
			return false
		}
		return m.Risk(supported) <= m.Risk(bare)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPropertyFitNeverProducesNaN(t *testing.T) {
	f := func(seed uint64) bool {
		m := randModel(seed)
		insts := make([]Instance, 40)
		bad := make([]bool, 40)
		rng := stats.NewRNG(seed ^ 0x1234)
		for i := range insts {
			insts[i] = randInstance(seed+uint64(i)*31, m.NumFeatures())
			bad[i] = rng.Float64() < 0.3
		}
		// Ensure both classes exist.
		bad[0], bad[1] = true, false
		m.cfg.Epochs = 30
		if err := m.Fit(insts, bad); err != nil {
			return false
		}
		for _, inst := range insts {
			r := m.Risk(inst)
			if math.IsNaN(r) || r < 0 || r > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
