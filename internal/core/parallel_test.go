package core

import (
	"bytes"
	"runtime"
	"testing"
)

// fitParams serializes a trained model's learned parameters.
func fitParams(t *testing.T, workers int, epochs int) []byte {
	t.Helper()
	prev := runtime.GOMAXPROCS(workers)
	defer runtime.GOMAXPROCS(prev)
	insts, bad := syntheticRiskData(400, 11)
	m, err := New(mkFeatures(), Config{Epochs: epochs, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(insts, bad); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestFitParallelMatchesSerial pins the tentpole determinism contract: the
// block-sharded parallel forward/backward passes must produce parameters
// bit-identical to single-worker execution (GOMAXPROCS is forced, so this
// exercises real goroutine interleaving even on a one-core host).
func TestFitParallelMatchesSerial(t *testing.T) {
	serial := fitParams(t, 1, 60)
	for _, workers := range []int{2, 4, 8} {
		parallel := fitParams(t, workers, 60)
		if !bytes.Equal(serial, parallel) {
			t.Fatalf("Fit with GOMAXPROCS=%d produced different parameters than serial", workers)
		}
	}
}

// TestRiskAllMatchesRisk pins the cached batch scorer against the scalar
// path, serial and parallel.
func TestRiskAllMatchesRisk(t *testing.T) {
	insts, bad := syntheticRiskData(300, 13)
	m, err := New(mkFeatures(), Config{Epochs: 40, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Fit(insts, bad); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(workers)
		batch := m.RiskAll(insts)
		runtime.GOMAXPROCS(prev)
		for i, inst := range insts {
			if batch[i] != m.Risk(inst) {
				t.Fatalf("workers=%d: RiskAll[%d] = %v, Risk = %v", workers, i, batch[i], m.Risk(inst))
			}
		}
	}
}
