package leipzig

import (
	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Preset specs for the three two-table benchmarks the paper evaluates on,
// matching the column headers of the published CSV files.

// DBLPScholar returns the spec for DBLP1.csv / Scholar.csv /
// DBLP-Scholar_perfectMapping.csv.
func DBLPScholar() Spec {
	schema := &dataset.Schema{Name: "dblp-scholar", Attrs: []dataset.Attr{
		{Name: "title", Type: metrics.Text},
		{Name: "authors", Type: metrics.EntitySet},
		{Name: "venue", Type: metrics.EntityName},
		{Name: "year", Type: metrics.Numeric},
	}}
	cols := []string{"title", "authors", "venue", "year"}
	return Spec{
		Name: "DS", Schema: schema,
		LeftColumns: cols, RightColumns: cols,
	}
}

// AbtBuy returns the spec for Abt.csv / Buy.csv /
// abt_buy_perfectMapping.csv.
func AbtBuy() Spec {
	schema := &dataset.Schema{Name: "abt-buy", Attrs: []dataset.Attr{
		{Name: "name", Type: metrics.EntityName},
		{Name: "description", Type: metrics.Text},
		{Name: "price", Type: metrics.Numeric},
	}}
	cols := []string{"name", "description", "price"}
	return Spec{
		Name: "AB", Schema: schema,
		LeftColumns: cols, RightColumns: cols,
	}
}

// AmazonGoogle returns the spec for Amazon.csv / GoogleProducts.csv /
// Amzon_GoogleProducts_perfectMapping.csv (the published file name carries
// the typo).
func AmazonGoogle() Spec {
	schema := &dataset.Schema{Name: "amazon-google", Attrs: []dataset.Attr{
		{Name: "title", Type: metrics.Text},
		{Name: "manufacturer", Type: metrics.EntityName},
		{Name: "description", Type: metrics.Text},
		{Name: "price", Type: metrics.Numeric},
	}}
	return Spec{
		Name: "AG", Schema: schema,
		// Amazon names the title column "title"; Google uses "name".
		LeftColumns:  []string{"title", "manufacturer", "description", "price"},
		RightColumns: []string{"name", "manufacturer", "description", "price"},
	}
}
