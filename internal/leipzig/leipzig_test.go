package leipzig

import (
	"strings"
	"testing"
)

const (
	dblpCSV = `id,title,authors,venue,year
d1,"spatial joins using r trees","t brinkhoff, h kriegel",sigmod,1993
d2,"query optimization survey","s chaudhuri",tods,1998
d3,"lonely paper","a nobody",vldb,1980
`
	scholarCSV = `id,title,authors,venue,year
s1,"spatial joins using r-trees","t brinkhoff, h p kriegel",sigmod conference,1993
s2,"an overview of query optimization","s chaudhuri",,1998
s3,"spatial systems work","x other",osdi,2001
`
	mappingCSV = `idDBLP,idScholar
d1,s1
d2,s2
`
)

func TestLoadDBLPScholarShape(t *testing.T) {
	w, err := Load(DBLPScholar(),
		strings.NewReader(dblpCSV),
		strings.NewReader(scholarCSV),
		strings.NewReader(mappingCSV))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Left.Records) != 3 || len(w.Right.Records) != 3 {
		t.Fatalf("records: %d left, %d right", len(w.Left.Records), len(w.Right.Records))
	}
	if got := w.MatchCount(); got != 2 {
		t.Errorf("matches = %d, want 2", got)
	}
	// The mapping pairs must be present and labeled matching.
	foundMapped := 0
	for _, p := range w.Pairs {
		l := w.Left.Records[p.Left]
		r := w.Right.Records[p.Right]
		if (l.ID == "d1" && r.ID == "s1") || (l.ID == "d2" && r.ID == "s2") {
			if !p.Match {
				t.Errorf("mapped pair %s-%s not marked match", l.ID, r.ID)
			}
			foundMapped++
		}
		// Ground truth must agree with entity components.
		if p.Match != (l.EntityID == r.EntityID) {
			t.Errorf("pair %s-%s label inconsistent with entities", l.ID, r.ID)
		}
	}
	if foundMapped != 2 {
		t.Errorf("found %d mapped pairs, want 2", foundMapped)
	}
	// Blocking should add candidate non-matches (shared tokens) without
	// duplicating the mapped pairs.
	if len(w.Pairs) <= 2 {
		t.Errorf("expected blocking to add non-match candidates, got %d pairs", len(w.Pairs))
	}
	seen := map[[2]int]bool{}
	for _, p := range w.Pairs {
		key := [2]int{p.Left, p.Right}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
	// Attribute values end up under the schema's attributes.
	d1 := w.Left.Records[0]
	if d1.Values[0] != "spatial joins using r trees" || d1.Values[3] != "1993" {
		t.Errorf("column mapping wrong: %v", d1.Values)
	}
}

func TestLoadColumnRemapping(t *testing.T) {
	// Amazon-Google style: right table calls the title column "name".
	amazon := "id,title,manufacturer,description,price\na1,office suite,msoft,desc,100\n"
	google := "id,name,manufacturer,description,price\ng1,office suite 2,msoft,other desc,90\n"
	mapping := "idAmazon,idGoogleBase\na1,g1\n"
	w, err := Load(AmazonGoogle(),
		strings.NewReader(amazon), strings.NewReader(google), strings.NewReader(mapping))
	if err != nil {
		t.Fatal(err)
	}
	if w.Right.Records[0].Values[0] != "office suite 2" {
		t.Errorf("right title not remapped from 'name': %v", w.Right.Records[0].Values)
	}
	if w.MatchCount() != 1 {
		t.Errorf("matches = %d, want 1", w.MatchCount())
	}
}

func TestLoadErrors(t *testing.T) {
	spec := DBLPScholar()
	ok := func(s string) *strings.Reader { return strings.NewReader(s) }

	// Mapping referencing an unknown id.
	badMap := "a,b\nd1,missing\n"
	if _, err := Load(spec, ok(dblpCSV), ok(scholarCSV), ok(badMap)); err == nil {
		t.Error("unknown mapped id should fail")
	}
	// Missing column in the header.
	noTitle := "id,authors,venue,year\nd1,x,y,1990\n"
	if _, err := Load(spec, ok(noTitle), ok(scholarCSV), ok(mappingCSV)); err == nil {
		t.Error("missing column should fail")
	}
	// Missing header entirely.
	if _, err := Load(spec, ok(""), ok(scholarCSV), ok(mappingCSV)); err == nil {
		t.Error("empty left file should fail")
	}
	// Bad spec: wrong number of columns.
	badSpec := spec
	badSpec.LeftColumns = []string{"title"}
	if _, err := Load(badSpec, ok(dblpCSV), ok(scholarCSV), ok(mappingCSV)); err == nil {
		t.Error("arity mismatch in spec should fail")
	}
	// Malformed mapping row.
	shortMap := "a,b\nonlyone\n"
	if _, err := Load(spec, ok(dblpCSV), ok(scholarCSV), ok(shortMap)); err == nil {
		t.Error("short mapping row should fail")
	}
}

func TestEntityComponentsHandleManyToMany(t *testing.T) {
	// d1 matches s1 and s2; d2 also matches s2 — one connected component.
	multiMap := "a,b\nd1,s1\nd1,s2\nd2,s2\n"
	w, err := Load(DBLPScholar(),
		strings.NewReader(dblpCSV), strings.NewReader(scholarCSV), strings.NewReader(multiMap))
	if err != nil {
		t.Fatal(err)
	}
	e := func(t_ *testing.T, rec string) string {
		for _, r := range append(w.Left.Records, w.Right.Records...) {
			if r.ID == rec {
				return r.EntityID
			}
		}
		t_.Fatalf("record %s not found", rec)
		return ""
	}
	if e(t, "d1") != e(t, "s1") || e(t, "d1") != e(t, "s2") || e(t, "d2") != e(t, "s2") {
		t.Error("transitively mapped records should share one entity")
	}
	if e(t, "d3") == e(t, "d1") {
		t.Error("unmapped record should keep its own entity")
	}
}

func TestLoadMalformedCSV(t *testing.T) {
	spec := DBLPScholar()
	ok := func(s string) *strings.Reader { return strings.NewReader(s) }

	// A bare quote in the mapping file is a CSV syntax error (the record
	// readers run with LazyQuotes, the mapping reader does not).
	badQuote := "a,b\nd1,\"s1\" oops\n"
	if _, err := Load(spec, ok(dblpCSV), ok(scholarCSV), ok(badQuote)); err == nil {
		t.Error("mapping with a bare quote should fail")
	}

	// A record row shorter than the id column's position fails loudly
	// instead of inventing an empty id. (The header maps columns by name,
	// so put id last to make a short row drop it.)
	idLast := "title,authors,venue,year,id\nspatial joins,t brinkhoff,sigmod,1993\n"
	if _, err := Load(spec, ok(idLast), ok(scholarCSV), ok(mappingCSV)); err == nil {
		t.Error("row missing its id column should fail")
	} else if !strings.Contains(err.Error(), "missing id") {
		t.Errorf("error %q does not name the missing id", err)
	}

	// Mapping with only a header yields zero matches but loads — blocking
	// still produces candidates, all non-matching.
	w, err := Load(spec, ok(dblpCSV), ok(scholarCSV), ok("a,b\n"))
	if err != nil {
		t.Fatalf("header-only mapping: %v", err)
	}
	if got := w.MatchCount(); got != 0 {
		t.Errorf("matches = %d, want 0", got)
	}
}

func TestLoadShortAndLongRowsAreLenient(t *testing.T) {
	// The published files have ragged rows (records with trailing columns
	// missing); the loader pads them with empty values rather than failing.
	ragged := "id,title,authors,venue,year\nd1,spatial joins,t brinkhoff\nd2,query optimization,s chaudhuri,tods,1998,EXTRA\n"
	w, err := Load(DBLPScholar(),
		strings.NewReader(ragged), strings.NewReader(scholarCSV), strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	d1 := w.Left.Records[0]
	if d1.Values[2] != "" || d1.Values[3] != "" {
		t.Errorf("short row not padded: %v", d1.Values)
	}
	d2 := w.Left.Records[1]
	if d2.Values[0] != "query optimization" || d2.Values[3] != "1998" {
		t.Errorf("long row mis-mapped: %v", d2.Values)
	}
}

func TestLoadDuplicateMappingRows(t *testing.T) {
	// The same mapped pair listed twice must not produce a duplicate
	// candidate pair.
	dupMap := "a,b\nd1,s1\nd1,s1\nd2,s2\n"
	w, err := Load(DBLPScholar(),
		strings.NewReader(dblpCSV), strings.NewReader(scholarCSV), strings.NewReader(dupMap))
	if err != nil {
		t.Fatal(err)
	}
	if got := w.MatchCount(); got != 2 {
		t.Errorf("matches = %d, want 2 (duplicate mapping row deduplicated)", got)
	}
	seen := map[[2]int]bool{}
	for _, p := range w.Pairs {
		key := [2]int{p.Left, p.Right}
		if seen[key] {
			t.Fatalf("duplicate pair %v", key)
		}
		seen[key] = true
	}
}

func TestPresetsWellFormed(t *testing.T) {
	for _, spec := range []Spec{DBLPScholar(), AbtBuy(), AmazonGoogle()} {
		if len(spec.LeftColumns) != len(spec.Schema.Attrs) {
			t.Errorf("%s: left columns mismatch", spec.Name)
		}
		if len(spec.RightColumns) != len(spec.Schema.Attrs) {
			t.Errorf("%s: right columns mismatch", spec.Name)
		}
	}
}
