// Package leipzig loads the real entity-resolution benchmark files in the
// University of Leipzig layout the paper evaluates on (DBLP-Scholar,
// Abt-Buy, Amazon-GoogleProducts): two record CSVs with header rows plus a
// perfect-mapping CSV of matching id pairs. The files are downloads we
// cannot fetch offline — the repository's experiments run on synthetic
// stand-ins — but users who have them can run the full pipeline on the real
// data through this loader.
package leipzig

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"repro/internal/blocking"
	"repro/internal/dataset"
)

// Spec describes how to interpret one benchmark: the workload schema and,
// per side, which CSV header column feeds each attribute.
type Spec struct {
	Name         string
	Schema       *dataset.Schema
	LeftColumns  []string // one header name per schema attribute
	RightColumns []string
	IDColumn     string // record id header (default "id")
	// Blocking generates the candidate non-match pairs; the mapping file
	// contributes the matches.
	Blocking blocking.Config
}

// Load reads the two record files and the perfect mapping and assembles a
// labeled workload: every mapped pair is a match; additional candidates
// come from token blocking with ground truth derived from the mapping.
func Load(spec Spec, left, right, mapping io.Reader) (*dataset.Workload, error) {
	if len(spec.LeftColumns) != len(spec.Schema.Attrs) || len(spec.RightColumns) != len(spec.Schema.Attrs) {
		return nil, fmt.Errorf("leipzig: column lists must cover all %d attributes", len(spec.Schema.Attrs))
	}
	if spec.IDColumn == "" {
		spec.IDColumn = "id"
	}
	lt, err := readSide(left, spec.Name+"-left", spec.Schema, spec.IDColumn, spec.LeftColumns)
	if err != nil {
		return nil, err
	}
	rt, err := readSide(right, spec.Name+"-right", spec.Schema, spec.IDColumn, spec.RightColumns)
	if err != nil {
		return nil, err
	}
	links, err := readMapping(mapping)
	if err != nil {
		return nil, err
	}
	assignEntities(lt, rt, links)

	w := &dataset.Workload{Name: spec.Name, Left: lt, Right: rt}
	// All mapped pairs are matches; blocking adds hard non-matches.
	leftByID := indexByID(lt)
	rightByID := indexByID(rt)
	seen := make(map[[2]int]bool)
	for _, l := range links {
		li, lok := leftByID[l[0]]
		ri, rok := rightByID[l[1]]
		if !lok || !rok {
			return nil, fmt.Errorf("leipzig: mapping references unknown ids %q, %q", l[0], l[1])
		}
		key := [2]int{li, ri}
		if !seen[key] {
			seen[key] = true
			w.Pairs = append(w.Pairs, dataset.Pair{Left: li, Right: ri, Match: true})
		}
	}
	for _, p := range blocking.Candidates(lt, rt, spec.Blocking) {
		key := [2]int{p.Left, p.Right}
		if !seen[key] {
			seen[key] = true
			w.Pairs = append(w.Pairs, p)
		}
	}
	return w, w.Validate()
}

func readSide(r io.Reader, name string, schema *dataset.Schema, idCol string, cols []string) (*dataset.Table, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	cr.LazyQuotes = true
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("leipzig: reading %s: %w", name, err)
	}
	if len(rows) < 1 {
		return nil, fmt.Errorf("leipzig: %s: missing header", name)
	}
	header := make(map[string]int, len(rows[0]))
	for i, h := range rows[0] {
		header[strings.TrimSpace(strings.ToLower(h))] = i
	}
	colIdx := make([]int, len(cols))
	for a, c := range cols {
		i, ok := header[strings.ToLower(c)]
		if !ok {
			return nil, fmt.Errorf("leipzig: %s: column %q not in header %v", name, c, rows[0])
		}
		colIdx[a] = i
	}
	idIdx, ok := header[strings.ToLower(idCol)]
	if !ok {
		return nil, fmt.Errorf("leipzig: %s: id column %q not in header", name, idCol)
	}
	t := &dataset.Table{Name: name, Schema: schema}
	for n, row := range rows[1:] {
		if idIdx >= len(row) {
			return nil, fmt.Errorf("leipzig: %s row %d: missing id", name, n+2)
		}
		values := make([]string, len(cols))
		for a, i := range colIdx {
			if i < len(row) {
				values[a] = row[i]
			}
		}
		t.Records = append(t.Records, dataset.Record{ID: row[idIdx], Values: values})
	}
	return t, nil
}

func readMapping(r io.Reader) ([][2]string, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("leipzig: reading mapping: %w", err)
	}
	var out [][2]string
	for n, row := range rows[1:] { // skip header
		if len(row) < 2 {
			return nil, fmt.Errorf("leipzig: mapping row %d: want 2 columns", n+2)
		}
		out = append(out, [2]string{row[0], row[1]})
	}
	return out, nil
}

// assignEntities gives every record an entity id consistent with the
// perfect mapping: connected components of the match graph share one id
// (a right record can match several left records and vice versa).
func assignEntities(left, right *dataset.Table, links [][2]string) {
	parent := map[string]string{}
	var find func(x string) string
	find = func(x string) string {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b string) {
		parent[find(a)] = find(b)
	}
	for _, l := range links {
		union("L:"+l[0], "R:"+l[1])
	}
	for i := range left.Records {
		left.Records[i].EntityID = find("L:" + left.Records[i].ID)
	}
	for i := range right.Records {
		right.Records[i].EntityID = find("R:" + right.Records[i].ID)
	}
}

func indexByID(t *dataset.Table) map[string]int {
	idx := make(map[string]int, len(t.Records))
	for i, r := range t.Records {
		idx[r.ID] = i
	}
	return idx
}
