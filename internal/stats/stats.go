// Package stats implements the probability distributions and descriptive
// statistics that the risk model builds on: the normal distribution (pdf,
// cdf, quantile), the truncated normal on an interval (used to keep
// equivalence probabilities in [0,1], paper Section 4.2), and the Beta
// distribution (used by the StaticRisk baseline's Bayesian inference).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Sqrt2 and related constants used by the normal distribution.
const (
	sqrt2   = math.Sqrt2
	sqrt2Pi = 2.50662827463100050241576528481104525 // sqrt(2*pi)
)

// NormalPDF returns the density of N(mu, sigma^2) at x. A non-positive sigma
// yields a point mass approximation: +Inf at x==mu, 0 elsewhere.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x == mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - mu) / sigma
	return math.Exp(-z*z/2) / (sigma * sqrt2Pi)
}

// NormalCDF returns P(X <= x) for X ~ N(mu, sigma^2). A non-positive sigma
// degenerates to the step function at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*sqrt2))
}

// NormalQuantile returns the p-quantile of N(mu, sigma^2). p is clamped to
// (0,1) at 1e-12 from each end so callers can pass 0/1 safely.
func NormalQuantile(p, mu, sigma float64) float64 {
	p = clampProb(p)
	if sigma <= 0 {
		return mu
	}
	return mu + sigma*sqrt2*math.Erfinv(2*p-1)
}

func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// TruncNormal is a normal distribution truncated to [Lo, Hi]. The zero value
// is not usable; construct with NewTruncNormal.
type TruncNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
	cdfLo     float64 // Phi((Lo-Mu)/Sigma)
	cdfHi     float64 // Phi((Hi-Mu)/Sigma)
}

// NewTruncNormal constructs the truncation of N(mu, sigma^2) to [lo, hi].
// It returns an error when lo >= hi. sigma <= 0 is accepted and treated as a
// point mass at clamp(mu, lo, hi).
func NewTruncNormal(mu, sigma, lo, hi float64) (*TruncNormal, error) {
	t, err := MakeTruncNormal(mu, sigma, lo, hi)
	if err != nil {
		return nil, err
	}
	return &t, nil
}

// MakeTruncNormal is NewTruncNormal returning the distribution by value —
// the allocation-free form the per-pair scoring hot path uses (a returned
// pointer escapes to the heap on every call; the value stays on the
// caller's stack).
func MakeTruncNormal(mu, sigma, lo, hi float64) (TruncNormal, error) {
	if lo >= hi {
		return TruncNormal{}, errors.New("stats: truncation interval is empty")
	}
	t := TruncNormal{Mu: mu, Sigma: sigma, Lo: lo, Hi: hi}
	if sigma > 0 {
		t.cdfLo = NormalCDF(lo, mu, sigma)
		t.cdfHi = NormalCDF(hi, mu, sigma)
	}
	return t, nil
}

// CDF returns P(X <= x) under the truncated distribution.
func (t *TruncNormal) CDF(x float64) float64 {
	if x <= t.Lo {
		return 0
	}
	if x >= t.Hi {
		return 1
	}
	if t.Sigma <= 0 {
		point := math.Min(math.Max(t.Mu, t.Lo), t.Hi)
		if x < point {
			return 0
		}
		return 1
	}
	denom := t.cdfHi - t.cdfLo
	if denom <= 0 {
		// The untruncated mass in [Lo,Hi] underflowed; fall back to the
		// nearest boundary point mass.
		point := math.Min(math.Max(t.Mu, t.Lo), t.Hi)
		if x < point {
			return 0
		}
		return 1
	}
	return (NormalCDF(x, t.Mu, t.Sigma) - t.cdfLo) / denom
}

// Quantile returns the p-quantile of the truncated distribution, always
// inside [Lo, Hi].
func (t *TruncNormal) Quantile(p float64) float64 {
	p = clampProb(p)
	if t.Sigma <= 0 {
		return math.Min(math.Max(t.Mu, t.Lo), t.Hi)
	}
	denom := t.cdfHi - t.cdfLo
	if denom <= 0 {
		return math.Min(math.Max(t.Mu, t.Lo), t.Hi)
	}
	x := NormalQuantile(t.cdfLo+p*denom, t.Mu, t.Sigma)
	return math.Min(math.Max(x, t.Lo), t.Hi)
}

// Mean returns the mean of the truncated distribution.
func (t *TruncNormal) Mean() float64 {
	if t.Sigma <= 0 {
		return math.Min(math.Max(t.Mu, t.Lo), t.Hi)
	}
	denom := t.cdfHi - t.cdfLo
	if denom <= 0 {
		return math.Min(math.Max(t.Mu, t.Lo), t.Hi)
	}
	a := (t.Lo - t.Mu) / t.Sigma
	b := (t.Hi - t.Mu) / t.Sigma
	return t.Mu + t.Sigma*(NormalPDF(a, 0, 1)-NormalPDF(b, 0, 1))/denom
}

// Beta is a Beta(Alpha, Beta) distribution over [0,1], used by the
// StaticRisk baseline for Bayesian posterior inference on equivalence
// probabilities.
type Beta struct {
	Alpha, Beta float64
}

// NewBeta returns the Beta distribution with the given shape parameters,
// or an error when either is non-positive.
func NewBeta(alpha, beta float64) (*Beta, error) {
	if alpha <= 0 || beta <= 0 {
		return nil, errors.New("stats: beta shape parameters must be positive")
	}
	return &Beta{Alpha: alpha, Beta: beta}, nil
}

// Mean returns alpha/(alpha+beta).
func (b *Beta) Mean() float64 { return b.Alpha / (b.Alpha + b.Beta) }

// Variance returns the Beta variance.
func (b *Beta) Variance() float64 {
	s := b.Alpha + b.Beta
	return b.Alpha * b.Beta / (s * s * (s + 1))
}

// CDF returns the regularized incomplete beta function I_x(alpha, beta),
// computed with the continued-fraction expansion (Numerical Recipes betacf).
func (b *Beta) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(b.Alpha+b.Beta) - lgamma(b.Alpha) - lgamma(b.Beta)
	front := math.Exp(lbeta + b.Alpha*math.Log(x) + b.Beta*math.Log(1-x))
	if x < (b.Alpha+1)/(b.Alpha+b.Beta+2) {
		return front * betacf(b.Alpha, b.Beta, x) / b.Alpha
	}
	return 1 - front*betacf(b.Beta, b.Alpha, 1-x)/b.Beta
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta function.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Quantile returns the p-quantile of the Beta distribution by bisection on
// the CDF (the CDF is monotone and continuous on [0,1]).
func (b *Beta) Quantile(p float64) float64 {
	p = clampProb(p)
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if b.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12 {
			break
		}
	}
	return (lo + hi) / 2
}

// CVaR returns the conditional value at risk at confidence level theta: the
// expected value of X given X >= Quantile(theta), estimated by averaging the
// quantile function over [theta, 1] (32-point midpoint rule). This is the
// risk metric used by the StaticRisk baseline [14].
func (b *Beta) CVaR(theta float64) float64 {
	theta = clampProb(theta)
	const n = 32
	step := (1 - theta) / n
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += b.Quantile(theta + (float64(i)+0.5)*step)
	}
	return sum / n
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// values.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile of xs using linear interpolation between
// order statistics. It returns 0 for an empty slice. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Sigmoid returns 1/(1+e^-x), computed stably for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Softplus returns log(1+e^x), computed stably for large |x|. Its value is
// always positive, which is why the risk model uses it to parametrize
// weights and RSDs.
func Softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// SoftplusInv returns the x with Softplus(x) == y, for y > 0.
func SoftplusInv(y float64) float64 {
	if y > 30 {
		return y
	}
	return math.Log(math.Expm1(y))
}

// SoftplusGrad returns d/dx Softplus(x) = Sigmoid(x).
func SoftplusGrad(x float64) float64 { return Sigmoid(x) }
