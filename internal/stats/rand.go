package stats

import "math"

// RNG is a small deterministic pseudo-random number generator
// (SplitMix64-based) used across the repository wherever reproducible
// randomness is needed: dataset generation, bootstrap sampling, network
// initialization and training-pair sampling. Having our own keeps every
// experiment bit-reproducible regardless of Go version changes to math/rand.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Seed 0 is remapped so the
// zero value still produces a usable stream.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits (SplitMix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard-normal variate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0,n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0,n) in random
// order. When k >= n it returns a full permutation.
func (r *RNG) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	return r.Perm(n)[:k]
}

// Bootstrap returns n indices drawn uniformly with replacement from [0,n),
// the resampling scheme used by the Uncertainty baseline's classifier
// ensemble.
func (r *RNG) Bootstrap(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = r.Intn(n)
	}
	return idx
}
