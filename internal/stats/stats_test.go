package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (tol %g)", name, got, want, tol)
	}
}

func TestNormalPDFCDF(t *testing.T) {
	approx(t, "pdf(0;0,1)", NormalPDF(0, 0, 1), 0.3989422804, 1e-9)
	approx(t, "cdf(0;0,1)", NormalCDF(0, 0, 1), 0.5, 1e-12)
	approx(t, "cdf(1.96;0,1)", NormalCDF(1.96, 0, 1), 0.9750021, 1e-6)
	approx(t, "cdf(-1.2816;0,1)", NormalCDF(-1.2815515655, 0, 1), 0.1, 1e-8)
	// Degenerate sigma behaves as a step.
	if NormalCDF(0.9, 1, 0) != 0 || NormalCDF(1.1, 1, 0) != 1 {
		t.Error("degenerate CDF should be a step at mu")
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.975, 0.999} {
		x := NormalQuantile(p, 2, 3)
		approx(t, "cdf(quantile)", NormalCDF(x, 2, 3), p, 1e-9)
	}
	approx(t, "z(0.9)", NormalQuantile(0.9, 0, 1), 1.2815515655, 1e-8)
}

func TestNormalQuantileMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return NormalQuantile(pa, 0, 1) <= NormalQuantile(pb, 0, 1)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruncNormal(t *testing.T) {
	tn, err := NewTruncNormal(0.5, 0.2, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetric around 0.5: median is 0.5.
	approx(t, "median", tn.Quantile(0.5), 0.5, 1e-9)
	approx(t, "mean", tn.Mean(), 0.5, 1e-9)
	if q := tn.Quantile(0.999999); q > 1 {
		t.Errorf("quantile exceeds Hi: %g", q)
	}
	if q := tn.Quantile(1e-9); q < 0 {
		t.Errorf("quantile below Lo: %g", q)
	}
	// Heavily shifted distribution: mass clamps near the boundary.
	tn2, _ := NewTruncNormal(3, 0.1, 0, 1)
	if q := tn2.Quantile(0.5); q < 0.99 {
		t.Errorf("shifted quantile = %g, want ~1", q)
	}
	// Degenerate interval rejected.
	if _, err := NewTruncNormal(0, 1, 1, 1); err == nil {
		t.Error("expected error for empty interval")
	}
}

func TestTruncNormalCDFQuantileRoundTrip(t *testing.T) {
	tn, _ := NewTruncNormal(0.3, 0.15, 0, 1)
	for _, p := range []float64{0.05, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := tn.Quantile(p)
		approx(t, "roundtrip", tn.CDF(x), p, 1e-6)
	}
}

func TestTruncNormalDegenerateSigma(t *testing.T) {
	tn, _ := NewTruncNormal(0.7, 0, 0, 1)
	approx(t, "point quantile", tn.Quantile(0.4), 0.7, 0)
	approx(t, "point mean", tn.Mean(), 0.7, 0)
	if tn.CDF(0.69) != 0 || tn.CDF(0.71) != 1 {
		t.Error("point-mass CDF should step at mu")
	}
}

func TestBeta(t *testing.T) {
	b, err := NewBeta(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "mean", b.Mean(), 0.4, 1e-12)
	approx(t, "variance", b.Variance(), 0.04, 1e-12)
	// Beta(2,3) CDF at 0.5 = 0.6875 (analytic).
	approx(t, "cdf(0.5)", b.CDF(0.5), 0.6875, 1e-9)
	// Uniform special case Beta(1,1): CDF(x)=x.
	u, _ := NewBeta(1, 1)
	for _, x := range []float64{0.1, 0.42, 0.9} {
		approx(t, "uniform cdf", u.CDF(x), x, 1e-9)
	}
	if _, err := NewBeta(0, 1); err == nil {
		t.Error("expected error for non-positive shape")
	}
}

func TestBetaQuantileInvertsCDF(t *testing.T) {
	b, _ := NewBeta(5, 2)
	for _, p := range []float64{0.1, 0.3, 0.5, 0.8, 0.95} {
		x := b.Quantile(p)
		approx(t, "beta roundtrip", b.CDF(x), p, 1e-8)
	}
}

func TestBetaCVaR(t *testing.T) {
	b, _ := NewBeta(2, 2)
	cvar := b.CVaR(0.9)
	q90 := b.Quantile(0.9)
	if cvar < q90 {
		t.Errorf("CVaR(0.9)=%g must be >= VaR(0.9)=%g", cvar, q90)
	}
	if cvar > 1 {
		t.Errorf("CVaR exceeds support: %g", cvar)
	}
	// Higher confidence -> higher CVaR.
	if b.CVaR(0.95) < cvar {
		t.Error("CVaR should be nondecreasing in theta")
	}
}

func TestDescriptiveStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	approx(t, "mean", Mean(xs), 2.5, 1e-12)
	approx(t, "variance", Variance(xs), 1.25, 1e-12)
	approx(t, "stddev", StdDev(xs), math.Sqrt(1.25), 1e-12)
	approx(t, "q0", Quantile(xs, 0), 1, 0)
	approx(t, "q1", Quantile(xs, 1), 4, 0)
	approx(t, "median", Quantile(xs, 0.5), 2.5, 1e-12)
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 || Quantile(nil, 0.5) != 0 {
		t.Error("empty-input conventions violated")
	}
}

func TestSigmoidSoftplus(t *testing.T) {
	approx(t, "sigmoid(0)", Sigmoid(0), 0.5, 1e-12)
	approx(t, "sigmoid(100)", Sigmoid(100), 1, 1e-12)
	approx(t, "sigmoid(-100)", Sigmoid(-100), 0, 1e-12)
	approx(t, "softplus(0)", Softplus(0), math.Ln2, 1e-12)
	f := func(x float64) bool {
		x = math.Mod(x, 50)
		if math.IsNaN(x) {
			return true
		}
		sp := Softplus(x)
		if sp <= 0 {
			return false
		}
		// Inverse round-trips.
		return math.Abs(Softplus(SoftplusInv(sp))-sp) < 1e-6*(1+sp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Gradient equals sigmoid.
	approx(t, "softplus'(1.3)", SoftplusGrad(1.3), Sigmoid(1.3), 0)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must yield same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
	// Seed 0 must still work.
	z := NewRNG(0)
	if z.Uint64() == z.Uint64() {
		t.Error("seed-0 stream looks constant")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	approx(t, "uniform mean", sum/float64(n), 0.5, 0.01)
	counts := make([]int, 10)
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for d, c := range counts {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("digit %d count %d deviates too much", d, c)
		}
	}
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(11)
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm()
	}
	approx(t, "norm mean", Mean(xs), 0, 0.02)
	approx(t, "norm stddev", StdDev(xs), 1, 0.02)
}

func TestRNGPermSampleBootstrap(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(10)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
	s := r.Sample(100, 5)
	if len(s) != 5 {
		t.Fatalf("Sample returned %d items", len(s))
	}
	distinct := map[int]bool{}
	for _, v := range s {
		distinct[v] = true
	}
	if len(distinct) != 5 {
		t.Error("Sample must return distinct indices")
	}
	if got := r.Sample(3, 10); len(got) != 3 {
		t.Errorf("Sample(k>=n) length = %d, want 3", len(got))
	}
	bs := r.Bootstrap(50)
	if len(bs) != 50 {
		t.Fatalf("Bootstrap length = %d", len(bs))
	}
	for _, v := range bs {
		if v < 0 || v >= 50 {
			t.Fatalf("bootstrap index out of range: %d", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}
