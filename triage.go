package learnrisk

import (
	"io"

	"repro/internal/classifier"
	"repro/internal/humo"
)

// TriageOutcome reports what a human-verification budget buys when spent on
// the riskiest pairs first (the r-HUMO-style application of risk analysis).
type TriageOutcome struct {
	Budget    int     // pairs verified by humans
	Corrected int     // mislabels fixed
	AccBefore float64 // labeling accuracy before verification
	AccAfter  float64
	F1Before  float64 // pair-matching F1 before verification
	F1After   float64
}

// labeled reconstructs the classifier.Labeled view of the report's ranking.
func (r *Report) labeled() (classifier.Labeled, []float64) {
	l := classifier.Labeled{
		Idx:   make([]int, len(r.Ranking)),
		Prob:  make([]float64, len(r.Ranking)),
		Label: make([]bool, len(r.Ranking)),
		Truth: make([]bool, len(r.Ranking)),
	}
	risks := make([]float64, len(r.Ranking))
	for k, rp := range r.Ranking {
		l.Idx[k] = rp.PairIndex
		l.Prob[k] = rp.Prob
		l.Label[k] = rp.Match
		l.Truth[k] = rp.Match != rp.Mislabeled
		risks[k] = rp.Risk
	}
	return l, risks
}

// Triage simulates spending `budget` human verifications on the riskiest
// test pairs and reports the quality improvement.
func (r *Report) Triage(budget int) (TriageOutcome, error) {
	l, risks := r.labeled()
	o, err := humo.Triage(l, risks, budget)
	if err != nil {
		return TriageOutcome{}, err
	}
	return TriageOutcome(o), nil
}

// BudgetCurve runs Triage for each budget, yielding the manual-cost vs
// quality tradeoff curve.
func (r *Report) BudgetCurve(budgets []int) ([]TriageOutcome, error) {
	l, risks := r.labeled()
	outs, err := humo.BudgetCurve(l, risks, budgets)
	if err != nil {
		return nil, err
	}
	curve := make([]TriageOutcome, len(outs))
	for i, o := range outs {
		curve[i] = TriageOutcome(o)
	}
	return curve, nil
}

// MinBudgetForAccuracy returns the smallest human budget that lifts the
// test labeling to the target accuracy when verifying in risk order, and
// whether the target is reachable.
func (r *Report) MinBudgetForAccuracy(target float64) (int, bool, error) {
	l, risks := r.labeled()
	return humo.MinBudgetForAccuracy(l, risks, target)
}

// SaveModel writes only the trained risk model (features, priors, learned
// weights) as JSON for inspection. For the full serve-anywhere artifact —
// classifier, rules, corpora and risk model — use Report.Model().Save,
// which learnrisk.Load restores.
func (r *Report) SaveModel(w io.Writer) error {
	return r.model.Save(w)
}
