package learnrisk

import (
	"errors"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/blocking"
	"repro/internal/dataset"
	"repro/internal/match"
)

// resolveFixture trains one small model and fills a match store with the
// workload's right-table records, returning the store and the ID of each
// right record (ids[i] is right record i).
func resolveFixture(t *testing.T) (*Workload, *Model, *match.Store, []uint64) {
	t.Helper()
	w, m := trainedModel(t)
	st, err := m.NewMatchStore(match.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]uint64, len(w.inner.Right.Records))
	for i, r := range w.inner.Right.Records {
		id, err := st.Add(r.Values)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return w, m, st, ids
}

// TestResolveMatchesBatchPipeline pins Resolve against the batch oracle
// built from the public pieces it composes: blocking.Candidates for the
// candidate set, Score for every candidate, a full sort for the top-k.
func TestResolveMatchesBatchPipeline(t *testing.T) {
	w, m, st, ids := resolveFixture(t)
	cfg := st.Config()
	const k = 5

	right := w.inner.Right
	schema := right.Schema
	for li := 0; li < len(w.inner.Left.Records) && li < 25; li++ {
		probe := w.inner.Left.Records[li].Values
		got, err := m.Resolve(st, probe, k)
		if err != nil {
			t.Fatal(err)
		}

		// Oracle: batch blocking + per-pair Score + sort by (Prob desc,
		// ID asc), truncated to k.
		left := &dataset.Table{Schema: schema, Records: []dataset.Record{{ID: "probe", Values: probe}}}
		pairs := blocking.Candidates(left, right, blocking.Config{
			Attrs: cfg.Attrs, MinSharedTokens: cfg.MinSharedTokens, MaxBlockSize: cfg.MaxBlockSize,
		})
		want := make([]MatchResult, 0, len(pairs))
		for _, p := range pairs {
			sc, err := m.Score(Pair{Left: probe, Right: right.Records[p.Right].Values})
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, MatchResult{ID: ids[p.Right], Score: sc})
		}
		sort.SliceStable(want, func(a, b int) bool {
			if want[a].Score.Prob != want[b].Score.Prob {
				return want[a].Score.Prob > want[b].Score.Prob
			}
			return want[a].ID < want[b].ID
		})
		if len(want) > k {
			want = want[:k]
		}

		if len(got) != len(want) {
			t.Fatalf("probe %d: got %d results, want %d", li, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
				t.Fatalf("probe %d result %d: got {%d %+v}, want {%d %+v}",
					li, i, got[i].ID, got[i].Score, want[i].ID, want[i].Score)
			}
		}
	}
}

// TestResolveBatchMatchesResolve pins ResolveBatch to per-probe Resolve.
func TestResolveBatchMatchesResolve(t *testing.T) {
	w, m, st, _ := resolveFixture(t)
	probes := make([][]string, 0, 20)
	for li := 0; li < len(w.inner.Left.Records) && li < 20; li++ {
		probes = append(probes, w.inner.Left.Records[li].Values)
	}
	batch, err := m.ResolveBatch(st, probes, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, probe := range probes {
		single, err := m.Resolve(st, probe, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i]) != len(single) {
			t.Fatalf("probe %d: batch %d results, single %d", i, len(batch[i]), len(single))
		}
		for j := range single {
			if batch[i][j] != single[j] {
				t.Fatalf("probe %d result %d: batch %+v, single %+v", i, j, batch[i][j], single[j])
			}
		}
	}
}

// TestResolveAfterDeletes checks that deleted records drop out of resolve
// results while everything else keeps its verdict.
func TestResolveAfterDeletes(t *testing.T) {
	w, m, st, ids := resolveFixture(t)
	probe := w.inner.Left.Records[0].Values
	before, err := m.Resolve(st, probe, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Skip("probe 0 has no candidates in this fixture")
	}
	if !st.Delete(before[0].ID) {
		t.Fatal("deleting the top match failed")
	}
	after, err := m.Resolve(st, probe, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.ID == before[0].ID {
			t.Fatalf("deleted record %d still resolves", before[0].ID)
		}
	}
	_ = ids
}

// TestResolveValidation covers the error surface: nil store, bad k, probe
// arity (wrapping ErrPairArity), and a store bound to a different arity.
func TestResolveValidation(t *testing.T) {
	_, m, st, _ := resolveFixture(t)
	probe := make([]string, len(m.Schema()))
	if _, err := m.Resolve(nil, probe, 3); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := m.Resolve(st, probe, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := m.Resolve(st, probe[:1], 3); !errors.Is(err, ErrPairArity) {
		t.Errorf("short probe err = %v, want ErrPairArity", err)
	}
	other, err := match.New(len(m.Schema())+1, match.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Resolve(other, probe, 3); err == nil {
		t.Error("arity-mismatched store accepted")
	}
	if _, err := m.ResolveBatch(st, [][]string{probe, probe[:1]}, 3); !errors.Is(err, ErrPairArity) {
		t.Errorf("batch with short probe err = %v, want ErrPairArity", err)
	}
}

// TestResolveConcurrent runs Resolve from many goroutines while the store
// mutates underneath — the pooled-scratch contract under -race (make race
// wires it in).
func TestResolveConcurrent(t *testing.T) {
	w, m, st, ids := resolveFixture(t)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				probe := w.inner.Left.Records[rng.Intn(len(w.inner.Left.Records))].Values
				res, err := m.Resolve(st, probe, 3)
				if err != nil {
					t.Error(err)
					return
				}
				for j := 1; j < len(res); j++ {
					prev, cur := res[j-1], res[j]
					if cur.Score.Prob > prev.Score.Prob {
						t.Errorf("results unsorted: %+v before %+v", prev, cur)
						return
					}
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for i := 0; i < 150; i++ {
			switch rng.Intn(2) {
			case 0:
				st.Delete(ids[rng.Intn(len(ids))])
			case 1:
				r := w.inner.Right.Records[rng.Intn(len(w.inner.Right.Records))]
				if _, err := st.Add(r.Values); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	wg.Wait()
}
