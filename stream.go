package learnrisk

import (
	"context"
	"errors"
	"fmt"
	"iter"

	"repro/internal/blocking"
	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dtree"
	"repro/internal/featstore"
	"repro/internal/par"
	"repro/internal/rules"
)

// candidateSeq returns the workload's candidate pairs as a lazy stream.
// With a materialized pair list the stream replays it; on a tables-only
// workload (LoadTablesCSV) pairs are produced by token blocking — the
// exact sequence blocking.Candidates materializes, emitted without ever
// holding the full list. Each range over the returned sequence replays the
// same pairs in the same order.
func (w *Workload) candidateSeq() iter.Seq[dataset.Pair] {
	if len(w.inner.Pairs) > 0 {
		return func(yield func(dataset.Pair) bool) {
			for _, p := range w.inner.Pairs {
				if !yield(p) {
					return
				}
			}
		}
	}
	return blocking.CandidateSeq(w.inner.Left, w.inner.Right, blocking.Config{})
}

// flagCheckInterval is how often the pass-A flag scan polls the context.
const flagCheckInterval = 8192

// streamEvalChunk is the per-worker granularity of the streaming
// evaluation's window scoring.
const streamEvalChunk = 64

// TrainStream is Train over a lazily streamed candidate-pair workload: the
// pipeline consumes the pairs in bounded windows (internal/featstore's
// Streamer over blocking's CandidateSeq) instead of materializing the pair
// list and the full metric-row store. Memory holds the per-pair ground
// truth flags plus the training and validation rows — never the candidate
// list or the test rows. The resulting model is bit-identical to Train on
// the equivalent materialized workload (same tables, pairs from token
// blocking): same split, same weights, same Save bytes.
//
// Pair indices in the model's split (TrainPairs, TestPairs, ...) are
// stream positions — usable with EvaluateStream on the same workload.
func TrainStream(ctx context.Context, w *Workload, opts Options) (*Model, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, err
	}

	// Pass A: ground-truth flags only — one bool per candidate pair, the
	// minimum the stratified split needs.
	var flags []bool
	for p := range w.candidateSeq() {
		if len(flags)%flagCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		flags = append(flags, p.Match)
	}
	split, err := dataset.SplitFlags(flags, opts.SplitRatio, opts.Seed)
	if err != nil {
		return nil, err
	}

	// Stream position -> (split part, slot within the part), so pass B can
	// scatter each window's rows to their split-order positions.
	part := make([]int8, len(flags))
	slot := make([]int32, len(flags))
	for k, i := range split.Train {
		part[i], slot[i] = 1, int32(k)
	}
	for k, i := range split.Valid {
		part[i], slot[i] = 2, int32(k)
	}

	// Pass B: metric rows of the train and valid parts, windowed. Only
	// these rows are copied out; test rows wait for the evaluation pass.
	width := len(w.cat.Metrics)
	trainX := make([][]float64, len(split.Train))
	validX := make([][]float64, len(split.Valid))
	st := featstore.NewStreamer(w.cat, w.inner.Left, w.inner.Right, 0)
	keep := func(i int) bool { return i < len(part) && part[i] != 0 }
	n, err := st.Run(w.candidateSeq(), keep, func(base int, pairs []dataset.Pair, rows [][]float64) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for j, row := range rows {
			if row == nil {
				continue
			}
			i := base + j
			cp := make([]float64, width)
			copy(cp, row)
			if part[i] == 1 {
				trainX[slot[i]] = cp
			} else {
				validX[slot[i]] = cp
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if n != len(flags) {
		return nil, fmt.Errorf("learnrisk: candidate stream changed length between passes: %d then %d pairs", len(flags), n)
	}

	// From here the stages mirror trainWithStore exactly, over the
	// split-ordered row copies instead of store views.
	trainY := make([]bool, len(split.Train))
	for k, i := range split.Train {
		trainY[k] = flags[i]
	}
	matcher, err := classifier.TrainRowsFlagsCtx(ctx, w.cat, trainX, trainY, classifier.Config{
		Epochs: opts.ClassifierEpochs, Seed: opts.Seed,
	}, stageProgress(opts.Progress, "classifier"))
	if err != nil {
		return nil, fmt.Errorf("learnrisk: classifier training: %w", err)
	}

	feats, err := dtree.GenerateRiskFeaturesCtx(ctx, trainX, trainY, w.cat.Names(), dtree.OneSidedConfig{
		MaxDepth: opts.RuleDepth,
	})
	if err != nil {
		return nil, fmt.Errorf("learnrisk: rule generation: %w", err)
	}
	if opts.Progress != nil {
		opts.Progress("rules", 1, 1)
	}
	rset, err := rules.Compile(feats, width)
	if err != nil {
		return nil, fmt.Errorf("learnrisk: rule compilation: %w", err)
	}
	stats := rset.Stats(trainX, trainY)
	riskModel, err := core.New(core.BuildFeatures(feats, stats), core.Config{
		Theta: opts.VaRConfidence, Epochs: opts.RiskEpochs, Seed: opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	validTruth := make([]bool, len(split.Valid))
	for k, i := range split.Valid {
		validTruth[k] = flags[i]
	}
	validLab := matcher.LabelRowsTruth(split.Valid, validX, validTruth)
	validInsts, validBad := core.BuildInstances(rset.Apply(validX), validLab)
	err = riskModel.FitCtx(ctx, validInsts, validBad, stageProgress(opts.Progress, "risk"))
	if err != nil && !errors.Is(err, core.ErrNoTrainingSignal) {
		return nil, fmt.Errorf("learnrisk: risk training: %w", err)
	}

	attrs := schemaAttrs(w)
	opts.Progress = nil
	return &Model{
		attrs:   attrs,
		fp:      fingerprintOf(attrs, w.cat.Names()),
		opts:    opts,
		cat:     w.cat,
		matcher: matcher,
		feats:   feats,
		rset:    rset,
		risk:    riskModel,
		split:   split,
	}, nil
}

// RunStream is Run over a lazily streamed workload: TrainStream followed
// by the streaming evaluation of the test part. For the same tables,
// options and seed the report is byte-identical to Run on the equivalent
// materialized workload, while peak memory stays bounded by the split rows
// actually trained on plus one streaming window.
func RunStream(w *Workload, opts Options) (*Report, error) {
	return RunStreamCtx(context.Background(), w, opts)
}

// RunStreamCtx is RunStream with cooperative cancellation and progress
// reporting (see TrainStream).
func RunStreamCtx(ctx context.Context, w *Workload, opts Options) (*Report, error) {
	m, err := TrainStream(ctx, w, opts)
	if err != nil {
		return nil, err
	}
	return m.evaluateStream(w, m.TestPairs())
}

// EvaluateStream is Evaluate over the workload's streamed candidate pairs:
// idx selects stream positions (for a tables-only workload, positions in
// the token-blocking sequence — the split indices a TrainStream model
// reports). Metric rows for the selected pairs are computed in bounded
// windows and scored immediately; nothing sized by the stream survives the
// call. The report is byte-identical to Evaluate over the materialized
// equivalent.
func (m *Model) EvaluateStream(w *Workload, idx []int) (*Report, error) {
	if err := m.CompatibleWith(w); err != nil {
		return nil, err
	}
	if len(idx) == 0 {
		return nil, errors.New("learnrisk: Evaluate needs at least one pair index")
	}
	for _, i := range idx {
		if i < 0 || (len(w.inner.Pairs) > 0 && i >= w.Size()) {
			return nil, fmt.Errorf("learnrisk: pair index %d outside workload of %d pairs", i, w.Size())
		}
	}
	return m.evaluateStream(w, idx)
}

// evaluateStream scores the pairs at the given stream positions window by
// window: each kept row yields its classifier probability and fired-rule
// set on the spot (through the pooled scoring scratch), and only those
// per-pair results — never the rows — are retained for the report.
func (m *Model) evaluateStream(w *Workload, idx []int) (*Report, error) {
	slots := make(map[int][]int, len(idx))
	for k, i := range idx {
		slots[i] = append(slots[i], k)
	}
	probs := make([]float64, len(idx))
	truth := make([]bool, len(idx))
	fired := make([][]int, len(idx))
	delivered := 0

	st := featstore.NewStreamer(m.cat, w.inner.Left, w.inner.Right, 0)
	keep := func(i int) bool { return len(slots[i]) > 0 }
	_, err := st.Run(w.candidateSeq(), keep, func(base int, pairs []dataset.Pair, rows [][]float64) error {
		par.ForChunks(len(rows), streamEvalChunk, func(_, lo, hi int) {
			s := m.acquireScratch()
			for j := lo; j < hi; j++ {
				row := rows[j]
				if row == nil {
					continue
				}
				p := m.matcher.ProbRowScratch(row, s.prob)
				m.rset.ApplyRowBitset(row, s.rules)
				s.fired = s.rules.AppendFired(s.fired[:0])
				var f []int
				if len(s.fired) > 0 {
					f = append([]int(nil), s.fired...)
				}
				for _, k := range slots[base+j] {
					probs[k] = p
					truth[k] = pairs[j].Match
					fired[k] = f
				}
			}
			m.pool.Put(s)
		})
		for j, row := range rows {
			if row != nil {
				delivered += len(slots[base+j])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	if delivered != len(idx) {
		return nil, fmt.Errorf("learnrisk: %d of %d pair indices beyond the candidate stream's end", len(idx)-delivered, len(idx))
	}

	lab := classifier.Labeled{
		Idx:   append([]int(nil), idx...),
		Prob:  probs,
		Label: make([]bool, len(idx)),
		Truth: truth,
	}
	for k, p := range probs {
		lab.Label[k] = p >= 0.5
	}
	return m.assembleReport(lab, fired), nil
}
