package learnrisk

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// trainedModel trains one small model per test run and shares it.
func trainedModel(t *testing.T) (*Workload, *Model) {
	t.Helper()
	w, err := Generate("DS", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(context.Background(), w, Options{RiskEpochs: 150, ClassifierEpochs: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return w, m
}

// freshPairs draws raw-value pairs from the workload for the serving path.
func freshPairs(w *Workload, n int) []Pair {
	pairs := make([]Pair, n)
	for i := range pairs {
		l, r := w.PairValues((i * 13) % w.Size())
		pairs[i] = Pair{Left: l, Right: r}
	}
	return pairs
}

// TestRunMatchesTrainEvaluate locks the acceptance criterion: Run is a thin
// Train+Evaluate wrapper with byte-identical output for the same workload,
// options and seed.
func TestRunMatchesTrainEvaluate(t *testing.T) {
	w, err := Generate("AG", 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{RiskEpochs: 80, ClassifierEpochs: 10, Seed: 5}
	viaRun, err := Run(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(context.Background(), w, opts)
	if err != nil {
		t.Fatal(err)
	}
	viaModel, err := m.Evaluate(w, m.TestPairs())
	if err != nil {
		t.Fatal(err)
	}
	if viaRun.AUROC != viaModel.AUROC ||
		viaRun.ClassifierF1 != viaModel.ClassifierF1 ||
		viaRun.ClassifierAccuracy != viaModel.ClassifierAccuracy ||
		viaRun.Mislabels != viaModel.Mislabels ||
		viaRun.NumFeatures != viaModel.NumFeatures ||
		viaRun.RuleCoverage != viaModel.RuleCoverage {
		t.Fatalf("report scalars differ: %+v vs %+v", viaRun, viaModel)
	}
	if len(viaRun.Ranking) != len(viaModel.Ranking) {
		t.Fatalf("ranking lengths differ: %d vs %d", len(viaRun.Ranking), len(viaModel.Ranking))
	}
	for i := range viaRun.Ranking {
		if viaRun.Ranking[i] != viaModel.Ranking[i] {
			t.Fatalf("ranking[%d] differs: %+v vs %+v", i, viaRun.Ranking[i], viaModel.Ranking[i])
		}
	}
	if viaRun.Model() == nil {
		t.Fatal("Run's report should expose its Model artifact")
	}
}

func TestTrainCancellation(t *testing.T) {
	w, err := Generate("DS", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first epoch
	_, err = Train(ctx, w, Options{Seed: 3})
	if err == nil {
		t.Fatal("Train with a canceled context should fail")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
}

func TestTrainCancellationMidway(t *testing.T) {
	w, err := Generate("DS", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Cancel from inside the progress callback: the next epoch-boundary
	// check must abort training.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := Options{Seed: 3, RiskEpochs: 500}
	opts.Progress = func(stage string, done, total int) {
		if stage == "risk" && done >= 3 {
			cancel()
		}
	}
	_, err = Train(ctx, w, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
}

func TestTrainProgressStages(t *testing.T) {
	w, err := Generate("DS", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	opts := Options{RiskEpochs: 50, ClassifierEpochs: 5, Seed: 7}
	opts.Progress = func(stage string, done, total int) {
		seen[stage]++
		if done < 1 || done > total {
			t.Errorf("stage %s: done %d outside [1,%d]", stage, done, total)
		}
	}
	if _, err := Train(context.Background(), w, opts); err != nil {
		t.Fatal(err)
	}
	if seen["classifier"] != 5 {
		t.Errorf("classifier progress calls = %d, want 5", seen["classifier"])
	}
	if seen["rules"] != 1 {
		t.Errorf("rules progress calls = %d, want 1", seen["rules"])
	}
	if seen["risk"] != 50 {
		t.Errorf("risk progress calls = %d, want 50", seen["risk"])
	}
}

func TestOptionsValidation(t *testing.T) {
	w, err := Generate("DS", 0.02, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts Options
		want string // substring of the error
	}{
		{"negative rule depth", Options{RuleDepth: -1}, "RuleDepth"},
		{"absurd rule depth", Options{RuleDepth: 99}, "RuleDepth"},
		{"negative risk epochs", Options{RiskEpochs: -5}, "RiskEpochs"},
		{"negative classifier epochs", Options{ClassifierEpochs: -2}, "ClassifierEpochs"},
		{"VaR confidence at 1", Options{VaRConfidence: 1}, "VaRConfidence"},
		{"VaR confidence negative", Options{VaRConfidence: -0.1}, "VaRConfidence"},
		{"VaR confidence above 1", Options{VaRConfidence: 1.5}, "VaRConfidence"},
		{"two-part ratio", Options{SplitRatio: "1:1"}, "SplitRatio"},
		{"non-numeric ratio", Options{SplitRatio: "a:b:c"}, "SplitRatio"},
		{"zero ratio part", Options{SplitRatio: "0:2:5"}, "SplitRatio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Train(context.Background(), w, tc.opts); err == nil {
				t.Fatalf("opts %+v should fail", tc.opts)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
			if _, err := Run(w, tc.opts); err == nil {
				t.Fatalf("Run with opts %+v should fail too", tc.opts)
			}
		})
	}
	// Zero values remain valid defaults.
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options should validate, got %v", err)
	}
}

func TestScoreBatchMatchesScore(t *testing.T) {
	w, m := trainedModel(t)
	pairs := freshPairs(w, 40)
	batch, err := m.ScoreBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(pairs) {
		t.Fatalf("batch size %d, want %d", len(batch), len(pairs))
	}
	for i, p := range pairs {
		s, err := m.Score(p)
		if err != nil {
			t.Fatal(err)
		}
		if s != batch[i] {
			t.Fatalf("pair %d: Score %+v != ScoreBatch %+v", i, s, batch[i])
		}
	}
	for i, s := range batch {
		if s.Prob < 0 || s.Prob > 1 || s.Risk < 0 || s.Risk > 1 {
			t.Fatalf("pair %d: score out of range: %+v", i, s)
		}
		if s.Match != (s.Prob >= 0.5) {
			t.Fatalf("pair %d: label %v inconsistent with prob %v", i, s.Match, s.Prob)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w, m := trainedModel(t)
	pairs := freshPairs(w, 60)
	before, err := m.ScoreBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fingerprint drifted: %s vs %s", loaded.Fingerprint(), m.Fingerprint())
	}
	after, err := loaded.ScoreBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("pair %d: loaded model diverged: %+v vs %+v", i, before[i], after[i])
		}
	}
	// A second round trip is stable too (no lossy encode).
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Save is not stable across a Load round trip")
	}
	// The loaded model evaluates the original workload identically.
	repA, err := m.Evaluate(w, m.TestPairs())
	if err != nil {
		t.Fatal(err)
	}
	repB, err := loaded.Evaluate(w, m.TestPairs())
	if err != nil {
		t.Fatal(err)
	}
	if repA.AUROC != repB.AUROC || len(repA.Ranking) != len(repB.Ranking) {
		t.Fatalf("loaded model evaluates differently: AUROC %v vs %v", repA.AUROC, repB.AUROC)
	}
	// Loaded models carry no train-time split.
	if loaded.TestPairs() != nil || loaded.TrainPairs() != nil || loaded.ValidPairs() != nil {
		t.Fatal("loaded model should not claim a train-time split")
	}
}

func TestLoadRejectsFingerprintMismatch(t *testing.T) {
	_, m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Tamper with the schema so the stored fingerprint no longer matches.
	tampered := strings.Replace(buf.String(), `"type": "text"`, `"type": "entity-name"`, 1)
	if tampered == buf.String() {
		t.Fatal("tampering failed to change the envelope")
	}
	_, err := Load(strings.NewReader(tampered))
	if err == nil {
		t.Fatal("Load should reject a schema/fingerprint mismatch")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error %q should name the fingerprint", err)
	}

	// Unsupported version fails loudly too.
	versioned := strings.Replace(buf.String(), `"version": 1`, `"version": 99`, 1)
	if _, err := Load(strings.NewReader(versioned)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version mismatch error = %v", err)
	}

	// Garbage input fails loudly.
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage input should fail")
	}

	// A corrupted activation id in the network is rejected rather than
	// silently degrading to an identity activation.
	badAct := strings.Replace(buf.String(), `"act": 0`, `"act": 9`, 1)
	if badAct == buf.String() {
		t.Fatal("activation tampering failed to change the envelope")
	}
	if _, err := Load(strings.NewReader(badAct)); err == nil || !strings.Contains(err.Error(), "activation") {
		t.Fatalf("corrupted activation error = %v", err)
	}
}

func TestEvaluateRejectsMismatchedWorkload(t *testing.T) {
	_, m := trainedModel(t) // DS schema: 4 attributes
	other, err := Generate("AB", 0.02, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CompatibleWith(other); err == nil {
		t.Fatal("AB workload should not be compatible with a DS-trained model")
	}
	if _, err := m.Evaluate(other, []int{0, 1, 2}); err == nil {
		t.Fatal("Evaluate on a mismatched schema should fail")
	} else if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error %q should name the fingerprint", err)
	}
}

func TestEvaluateRejectsBadIndices(t *testing.T) {
	w, m := trainedModel(t)
	if _, err := m.Evaluate(w, nil); err == nil {
		t.Fatal("empty index list should fail")
	}
	if _, err := m.Evaluate(w, []int{w.Size()}); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	if _, err := m.Evaluate(w, []int{-1}); err == nil {
		t.Fatal("negative index should fail")
	}
}

func TestExplainIndexContract(t *testing.T) {
	w, m := trainedModel(t)
	rep, err := m.Evaluate(w, m.TestPairs())
	if err != nil {
		t.Fatal(err)
	}
	// Every ranked pair explains with ok=true and a non-empty decomposition.
	why, ok := rep.ExplainIndex(rep.Ranking[0].PairIndex)
	if !ok || len(why) == 0 {
		t.Fatalf("ranked pair: ok=%v len=%d, want true and non-empty", ok, len(why))
	}
	// A pair outside the evaluation is distinguishable: ok=false, nil lines.
	why, ok = rep.ExplainIndex(-1)
	if ok || why != nil {
		t.Fatalf("unknown pair: ok=%v why=%v, want false and nil", ok, why)
	}
	// Explain keeps the documented nil contract.
	if got := rep.Explain(RankedPair{PairIndex: -1}); got != nil {
		t.Fatalf("Explain of unknown pair = %v, want nil", got)
	}
}

// TestScoreConcurrent hammers one shared model from many goroutines mixing
// Score, ScoreBatch and ExplainPair; run under -race via `make race`.
func TestScoreConcurrent(t *testing.T) {
	w, m := trainedModel(t)
	pairs := freshPairs(w, 32)
	want, err := m.ScoreBatch(pairs)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				if g%2 == 0 {
					got, err := m.ScoreBatch(pairs)
					if err != nil {
						errs <- err
						return
					}
					for i := range got {
						if got[i] != want[i] {
							errs <- errors.New("concurrent ScoreBatch diverged")
							return
						}
					}
				} else {
					for i, p := range pairs {
						s, err := m.Score(p)
						if err != nil {
							errs <- err
							return
						}
						if s != want[i] {
							errs <- errors.New("concurrent Score diverged")
							return
						}
					}
					if _, err := m.ExplainPair(pairs[g%len(pairs)]); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestScoreBatchConcurrent is the -race gate's dedicated scoring-
// concurrency test: many goroutines share one model and one batch shape.
func TestScoreBatchConcurrent(t *testing.T) {
	w, m := trainedModel(t)
	pairs := freshPairs(w, 64)
	var wg sync.WaitGroup
	results := make([][]PairScore, 6)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r, err := m.ScoreBatch(pairs)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = r
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(results); g++ {
		for i := range results[g] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d pair %d diverged", g, i)
			}
		}
	}
}

func TestScoreRejectsArityMismatch(t *testing.T) {
	w, m := trainedModel(t)
	l, r := w.PairValues(0)
	short := Pair{Left: l[:len(l)-1], Right: r}
	if _, err := m.Score(short); err == nil {
		t.Fatal("Score should reject a pair missing an attribute value")
	}
	if _, err := m.ScoreBatch([]Pair{{Left: l, Right: r}, short}); err == nil {
		t.Fatal("ScoreBatch should reject a malformed pair")
	} else if !strings.Contains(err.Error(), "pair 1") {
		t.Fatalf("error %q should name the offending pair", err)
	}
	if _, err := m.ExplainPair(Pair{Left: nil, Right: r}); err == nil {
		t.Fatal("ExplainPair should reject a pair with no values")
	}
}

func TestSplitAccessorsReturnCopies(t *testing.T) {
	w, m := trainedModel(t)
	idx := m.TestPairs()
	for i := range idx {
		idx[i] = -1
	}
	if fresh := m.TestPairs(); len(fresh) > 0 && fresh[0] == -1 {
		t.Fatal("mutating TestPairs' result corrupted the model's split")
	}
	if _, err := m.Evaluate(w, m.TestPairs()); err != nil {
		t.Fatalf("evaluation after caller-side mutation: %v", err)
	}
}

func TestActiveLearnCtxCancellation(t *testing.T) {
	w, err := Generate("DS", 0.03, 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = ActiveLearnCtx(ctx, w, ActiveOptions{Rounds: 2, InitialSize: 64, BatchSize: 32, Seed: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled chain", err)
	}
}
