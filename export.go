package learnrisk

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteRankingCSV writes the risk ranking as CSV (rank, pair_index, risk,
// classifier_prob, machine_label, mislabeled) for spreadsheet triage or
// downstream tooling.
func (r *Report) WriteRankingCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"rank", "pair_index", "risk", "classifier_prob", "machine_label", "mislabeled"}); err != nil {
		return err
	}
	for rank, rp := range r.Ranking {
		row := []string{
			strconv.Itoa(rank + 1),
			strconv.Itoa(rp.PairIndex),
			strconv.FormatFloat(rp.Risk, 'f', 6, 64),
			strconv.FormatFloat(rp.Prob, 'f', 6, 64),
			label(rp.Match),
			strconv.FormatBool(rp.Mislabeled),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func label(match bool) string {
	if match {
		return "matching"
	}
	return "unmatching"
}

// reportJSON is the exported JSON shape of a report.
type reportJSON struct {
	AUROC              float64          `json:"auroc"`
	ClassifierF1       float64          `json:"classifier_f1"`
	ClassifierAccuracy float64          `json:"classifier_accuracy"`
	Mislabels          int              `json:"mislabels"`
	NumFeatures        int              `json:"num_features"`
	RuleCoverage       float64          `json:"rule_coverage"`
	Features           []string         `json:"features"`
	Ranking            []rankedPairJSON `json:"ranking"`
}

type rankedPairJSON struct {
	Rank       int      `json:"rank"`
	PairIndex  int      `json:"pair_index"`
	Risk       float64  `json:"risk"`
	Prob       float64  `json:"classifier_prob"`
	Label      string   `json:"machine_label"`
	Mislabeled bool     `json:"mislabeled"`
	Why        []string `json:"why,omitempty"`
}

// WriteJSON writes the whole report — summary metrics, generated features
// and the ranking with per-pair explanations for the top explainLimit pairs
// (0 = no explanations) — as indented JSON.
func (r *Report) WriteJSON(w io.Writer, explainLimit int) error {
	out := reportJSON{
		AUROC:              r.AUROC,
		ClassifierF1:       r.ClassifierF1,
		ClassifierAccuracy: r.ClassifierAccuracy,
		Mislabels:          r.Mislabels,
		NumFeatures:        r.NumFeatures,
		RuleCoverage:       r.RuleCoverage,
		Features:           r.Features(),
	}
	for rank, rp := range r.Ranking {
		rj := rankedPairJSON{
			Rank:       rank + 1,
			PairIndex:  rp.PairIndex,
			Risk:       rp.Risk,
			Prob:       rp.Prob,
			Label:      label(rp.Match),
			Mislabeled: rp.Mislabeled,
		}
		if rank < explainLimit {
			rj.Why = r.Explain(rp)
		}
		out.Ranking = append(out.Ranking, rj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
