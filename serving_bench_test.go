// Serving-path benchmarks: steady-state Score, ScoreBatch and candidate
// blocking — the hot path of the HTTP service (internal/server) and of
// bring-your-own-table workloads. cmd/bench records them into
// BENCH_PR4.json (see Makefile bench-pr4 / bench-pr4-baseline), so the
// before/after of the zero-allocation scoring path is captured the same
// way BENCH_PR1.json captured the training-path rework.
package learnrisk_test

import (
	"context"
	"sync"
	"testing"

	learnrisk "repro"
	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

// servingBenchBatch is the batch size of the ScoreBatch bench — the upper
// end of the micro-batcher's default flush size (internal/server MaxBatch).
const servingBenchBatch = 64

var (
	servingOnce  sync.Once
	servingModel *learnrisk.Model
	servingPairs []learnrisk.Pair
	servingErr   error
)

// servingSetup trains one model for all serving benches and materializes a
// pool of raw-value pairs shaped like serving traffic (fresh pairs, values
// only — no ground truth, no store).
func servingSetup(b *testing.B) (*learnrisk.Model, []learnrisk.Pair) {
	b.Helper()
	servingOnce.Do(func() {
		w, err := learnrisk.Generate("AB", 0.05, 7)
		if err != nil {
			servingErr = err
			return
		}
		m, err := learnrisk.Train(context.Background(), w, learnrisk.Options{Seed: 7})
		if err != nil {
			servingErr = err
			return
		}
		n := w.Size()
		if n > 512 {
			n = 512
		}
		pairs := make([]learnrisk.Pair, n)
		for i := 0; i < n; i++ {
			l, r := w.PairValues(i)
			pairs[i] = learnrisk.Pair{Left: l, Right: r}
		}
		servingModel, servingPairs = m, pairs
	})
	if servingErr != nil {
		b.Fatal(servingErr)
	}
	return servingModel, servingPairs
}

// BenchmarkServeScore measures steady-state single-pair scoring: the unit
// of work behind every POST /v1/score request.
func BenchmarkServeScore(b *testing.B) {
	m, pairs := servingSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Score(pairs[i%len(pairs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeScoreBatch measures batch scoring at the micro-batcher's
// flush size; ns/pair is the number to compare across PRs.
func BenchmarkServeScoreBatch(b *testing.B) {
	m, pairs := servingSetup(b)
	batch := pairs[:servingBenchBatch]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ScoreBatch(batch); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*servingBenchBatch), "ns/pair")
}

// BenchmarkServeExplainPair measures the explanation path of POST
// /v1/explain (score + decomposition).
func BenchmarkServeExplainPair(b *testing.B) {
	m, pairs := servingSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ExplainPair(pairs[i%len(pairs)]); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	blockingOnce  sync.Once
	blockingLeft  *dataset.Table
	blockingRight *dataset.Table
	blockingErr   error
)

// blockingSetup generates one mid-sized table pair for the blocking bench.
func blockingSetup(b *testing.B) (*dataset.Table, *dataset.Table) {
	b.Helper()
	blockingOnce.Do(func() {
		spec, ok := datagen.ByName("AB", 11)
		if !ok {
			b.Fatal("datagen: unknown profile AB")
		}
		w, err := datagen.Generate(spec, 0.4)
		if err != nil {
			blockingErr = err
			return
		}
		blockingLeft, blockingRight = w.Left, w.Right
	})
	if blockingErr != nil {
		b.Fatal(blockingErr)
	}
	return blockingLeft, blockingRight
}

// BenchmarkServeBlocking measures token-blocking candidate generation — the
// entry cost of every bring-your-own-table workload (LoadCSV without a
// pairs file).
func BenchmarkServeBlocking(b *testing.B) {
	left, right := blockingSetup(b)
	var pairs int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := blocking.Candidates(left, right, blocking.Config{})
		pairs = len(got)
	}
	b.ReportMetric(float64(pairs), "pairs")
}
