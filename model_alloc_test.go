package learnrisk

import (
	"testing"
)

// Allocation-regression guards for the serving hot path (run by `make
// tier1` via `make allocs` / `make test`). The contracts:
//
//   - steady-state Model.Score: 0 allocs/op — the pooled scoreScratch
//     absorbs every buffer the pair evaluation touches;
//   - steady-state Model.ScoreBatch: a small per-call bound that does NOT
//     grow with the batch size (the result slice plus the internal/par
//     chunk dispatch), zero allocations per pair.
//
// testing.AllocsPerRun pins GOMAXPROCS to 1 for the measurement, which
// makes the ScoreBatch bound deterministic (no worker goroutine spawns);
// the parallel path's extra cost is O(workers) goroutines per call, also
// independent of the batch size.

// scoreBatchAllocBound is the documented per-call allocation budget of
// ScoreBatch at GOMAXPROCS=1: the result slice, the chunk closure, and
// pool bookkeeping. Raising it requires a PERFORMANCE.md update.
const scoreBatchAllocBound = 8

func allocModelAndPairs(t *testing.T) (*Model, []Pair) {
	t.Helper()
	w, m := trainedModel(t)
	n := w.Size()
	if n > 64 {
		n = 64
	}
	pairs := make([]Pair, n)
	for i := 0; i < n; i++ {
		l, r := w.PairValues(i)
		pairs[i] = Pair{Left: l, Right: r}
	}
	return m, pairs
}

func TestScoreSteadyStateAllocs(t *testing.T) {
	m, pairs := allocModelAndPairs(t)
	for _, p := range pairs { // warm the pooled scratch buffers
		if _, err := m.Score(p); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := m.Score(pairs[0]); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Score allocates %v/op, want 0", allocs)
	}
	// Across distinct pairs too (no side-cache crutch).
	allocs = testing.AllocsPerRun(100, func() {
		for _, p := range pairs {
			if _, err := m.Score(p); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Score over %d distinct pairs allocates %v per cycle, want 0", len(pairs), allocs)
	}
}

func TestScoreBatchSteadyStateAllocs(t *testing.T) {
	m, pairs := allocModelAndPairs(t)
	if _, err := m.ScoreBatch(pairs); err != nil { // warm
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.ScoreBatch(pairs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > scoreBatchAllocBound {
		t.Fatalf("steady-state ScoreBatch(%d pairs) allocates %v/call, bound %d", len(pairs), allocs, scoreBatchAllocBound)
	}
	// The bound must not scale with batch size: double the batch, same cap.
	double := append(append([]Pair(nil), pairs...), pairs...)
	if _, err := m.ScoreBatch(double); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := m.ScoreBatch(double); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > scoreBatchAllocBound {
		t.Fatalf("steady-state ScoreBatch(%d pairs) allocates %v/call, bound %d", len(double), allocs, scoreBatchAllocBound)
	}
}
