package learnrisk

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"testing"
)

func TestWriteRankingCSV(t *testing.T) {
	rep := triageReport(t)
	var buf bytes.Buffer
	if err := rep.WriteRankingCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(rep.Ranking)+1 {
		t.Fatalf("csv rows = %d, want %d", len(rows), len(rep.Ranking)+1)
	}
	if rows[0][0] != "rank" || rows[0][2] != "risk" {
		t.Errorf("header = %v", rows[0])
	}
	// Risk column is sorted descending and parses.
	prev := 2.0
	for _, row := range rows[1:] {
		risk, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if risk > prev {
			t.Fatal("csv risks not descending")
		}
		prev = risk
		if row[4] != "matching" && row[4] != "unmatching" {
			t.Fatalf("bad label %q", row[4])
		}
	}
}

func TestWriteJSON(t *testing.T) {
	rep := triageReport(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf, 3); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		AUROC    float64  `json:"auroc"`
		Features []string `json:"features"`
		Ranking  []struct {
			Rank int      `json:"rank"`
			Risk float64  `json:"risk"`
			Why  []string `json:"why"`
		} `json:"ranking"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.AUROC != rep.AUROC {
		t.Errorf("auroc = %f, want %f", decoded.AUROC, rep.AUROC)
	}
	if len(decoded.Features) != rep.NumFeatures {
		t.Errorf("features = %d, want %d", len(decoded.Features), rep.NumFeatures)
	}
	if len(decoded.Ranking) != len(rep.Ranking) {
		t.Fatalf("ranking = %d, want %d", len(decoded.Ranking), len(rep.Ranking))
	}
	// Explanations only on the first 3.
	for i, rp := range decoded.Ranking {
		if i < 3 && len(rp.Why) == 0 {
			t.Errorf("rank %d missing explanation", rp.Rank)
		}
		if i >= 3 && len(rp.Why) != 0 {
			t.Errorf("rank %d has unexpected explanation", rp.Rank)
		}
	}
}
