package learnrisk

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/par"
)

// The online resolve path: a trained Model plus a match.Store answer "here
// is a new record — who does it match?" without batch rebuilds. Candidates
// come from the store's incremental blocking index, every (probe,
// candidate) pair is scored through the same pooled zero-allocation scratch
// Score uses, and a bounded top-k heap keeps only the k best verdicts.

// Trace is a request-scoped stage timer (an alias for obs.Trace, see
// MatchConfig for the aliasing rationale). A nil *Trace disables all
// recording, so serving layers thread the pointer unconditionally.
type Trace = obs.Trace

// MatchResult is one resolved match: the stable store ID of the candidate
// record and the full serving-path verdict of the (probe, candidate) pair.
// Results rank by classifier probability, ties toward the lower ID.
type MatchResult struct {
	ID    uint64
	Score PairScore
}

// MatchConfig configures an online match store (blocking semantics and
// index maintenance). It aliases the implementation's config so callers
// outside this module can name it — the implementation lives under
// internal/, which import rules would otherwise make unreachable.
type MatchConfig = match.Config

// MatchStore is the online record store + incremental blocking index
// behind Resolve (an alias, see MatchConfig). Safe for concurrent use.
type MatchStore = match.Store

// NewMatchStore builds an empty online record store bound to the model's
// schema arity. Records added to it must carry one value per schema
// attribute, in training order — the same contract as Pair.
func (m *Model) NewMatchStore(cfg MatchConfig) (*MatchStore, error) {
	return match.New(len(m.attrs), cfg)
}

// DurableMatchStore is a MatchStore whose mutations survive restarts via a
// write-ahead log and periodic snapshots (an alias, see MatchConfig). It
// embeds MatchStore, so Resolve takes its .Store directly.
type DurableMatchStore = match.DurableStore

// DurableMatchOptions configures the durability layer (an alias, see
// MatchConfig).
type DurableMatchOptions = match.DurableOptions

// OpenDurableMatchStore opens (creating if needed) a durable online record
// store rooted at dir, bound to the model's schema arity, replaying any
// snapshot + log tail a previous process left there. Restart-safe: records
// added before a crash or clean shutdown are served again without
// re-ingest.
func (m *Model) OpenDurableMatchStore(dir string, cfg MatchConfig, opts DurableMatchOptions) (*DurableMatchStore, error) {
	return match.OpenDurable(dir, len(m.attrs), cfg, opts)
}

// resolveScratch is one resolve worker's reusable state: the probe scratch
// of the candidate index, the scoring scratch of the zero-alloc path, the
// per-probe candidate/score buffers and the bounded top-k heap.
type resolveScratch struct {
	ps     match.ProbeScratch
	ss     *scoreScratch
	ids    []uint64
	kept   []uint64
	scores []PairScore
	topk   match.TopK
	sorted []match.Scored
}

func (m *Model) acquireResolveScratch() *resolveScratch {
	if s, ok := m.resolvePool.Get().(*resolveScratch); ok {
		return s
	}
	return &resolveScratch{ss: m.acquireScratch()}
}

// checkResolve validates the store binding and one probe. Probe arity
// failures wrap ErrPairArity (a client error to serving layers).
func (m *Model) checkResolve(st *MatchStore, probe []string, k int) error {
	if st == nil {
		return errors.New("learnrisk: Resolve needs a match store (build one with NewMatchStore)")
	}
	if st.Arity() != len(m.attrs) {
		return fmt.Errorf("learnrisk: match store arity %d does not match the model schema's %d", st.Arity(), len(m.attrs))
	}
	if k <= 0 {
		return fmt.Errorf("learnrisk: Resolve needs k > 0, got %d", k)
	}
	if len(probe) != len(m.attrs) {
		return fmt.Errorf("learnrisk: probe has %d attribute values, model schema has %d (%s...): %w",
			len(probe), len(m.attrs), m.attrs[0].Name, ErrPairArity)
	}
	return nil
}

// Resolve finds the k best-scoring matches for one probe record among the
// store's live records: the incremental blocking index generates the
// candidate set (identical to a from-scratch batch blocking run over the
// surviving records), every candidate is risk-scored on the zero-alloc
// serving path with the probe-side preparation cached across candidates,
// and a bounded heap keeps the k highest classifier probabilities (ties
// toward the lower record ID). Fewer than k results means fewer candidates
// shared enough blocking tokens. Safe for concurrent use, including
// concurrently with Add/Delete on the store.
func (m *Model) Resolve(st *MatchStore, probe []string, k int) ([]MatchResult, error) {
	return m.ResolveTraced(st, probe, k, nil)
}

// ResolveTraced is Resolve with request-scoped stage timing: candidate
// generation on StageProbeTokenize, per-candidate scoring on StageScore,
// and the bounded-heap ranking on StageTopKMerge. A nil trace records
// nothing and takes no timestamps.
func (m *Model) ResolveTraced(st *MatchStore, probe []string, k int, tr *Trace) ([]MatchResult, error) {
	if err := m.checkResolve(st, probe, k); err != nil {
		return nil, err
	}
	s := m.acquireResolveScratch()
	out := m.resolveTracedInto(st, probe, k, s, tr)
	m.resolvePool.Put(s)
	return out, nil
}

// ResolveBatch resolves several probes, sharding them across GOMAXPROCS
// workers (internal/par). Results are in probe order; each entry is exactly
// what Resolve returns for that probe against the same store snapshot.
func (m *Model) ResolveBatch(st *MatchStore, probes [][]string, k int) ([][]MatchResult, error) {
	for i, probe := range probes {
		if err := m.checkResolve(st, probe, k); err != nil {
			return nil, fmt.Errorf("probe %d: %w", i, err)
		}
	}
	out := make([][]MatchResult, len(probes))
	par.ForChunks(len(probes), resolveBatchChunk, func(_, lo, hi int) {
		s := m.acquireResolveScratch()
		for i := lo; i < hi; i++ {
			out[i] = m.resolveInto(st, probes[i], k, s)
		}
		m.resolvePool.Put(s)
	})
	return out, nil
}

// resolveBatchChunk is the probe granularity of ResolveBatch workers: one
// probe fans out into many candidate scorings, so chunks stay small to
// load-balance skewed candidate counts.
const resolveBatchChunk = 4

// resolveInto runs one (already-validated) probe inside a scratch.
func (m *Model) resolveInto(st *MatchStore, probe []string, k int, s *resolveScratch) []MatchResult {
	return m.resolveTracedInto(st, probe, k, s, nil)
}

func (m *Model) resolveTracedInto(st *MatchStore, probe []string, k int, s *resolveScratch, tr *Trace) []MatchResult {
	m.rankInto(st, probe, k, nil, s, tr)
	out := make([]MatchResult, len(s.sorted))
	for i, e := range s.sorted {
		out[i] = MatchResult{ID: s.kept[e.ID], Score: s.scores[e.ID]}
	}
	return out
}

// rankInto is the shared resolve core: candidates from the incremental
// index (minus the skip list's globally pruned tokens), every candidate
// scored on the zero-alloc path, the k best retained. It leaves the
// verdicts in the scratch — s.sorted holds scratch positions best-first,
// s.kept/s.scores map a position back to the record ID and its full score.
func (m *Model) rankInto(st *MatchStore, probe []string, k int, skip []string, s *resolveScratch, tr *Trace) {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	var err error
	s.ids, err = st.AppendCandidatesSkip(s.ids[:0], probe, &s.ps, skip)
	if err != nil {
		// Unreachable: AppendCandidatesSkip's only failure is its arity
		// check, and checkResolve pinned the probe's arity to the store's
		// before any resolve work started. The store's arity is immutable.
		panic("learnrisk: resolve invariant violated: " + err.Error())
	}
	if tr != nil {
		now := time.Now()
		tr.Add(obs.StageProbeTokenize, now.Sub(t0))
		t0 = now
	}
	s.topk.Reset(k)
	s.kept = s.kept[:0]
	s.scores = s.scores[:0]
	for _, id := range s.ids {
		vals, ok := st.Get(id)
		if !ok {
			continue // deleted between probe and fetch; skip
		}
		sc := m.scorePair(Pair{Left: probe, Right: vals}, s.ss)
		pos := uint64(len(s.scores))
		s.kept = append(s.kept, id)
		s.scores = append(s.scores, sc)
		// Candidates arrive in ascending ID order, so the scratch position
		// preserves the ID tie-break.
		s.topk.Offer(match.Scored{ID: pos, Rank: sc.Prob})
	}
	if tr != nil {
		now := time.Now()
		tr.Add(obs.StageScore, now.Sub(t0))
		t0 = now
	}
	s.sorted = s.topk.AppendSorted(s.sorted[:0])
	if tr != nil {
		tr.Add(obs.StageTopKMerge, time.Since(t0))
	}
}
