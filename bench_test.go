// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md "Per-experiment index"), plus ablation benches for the
// design decisions DESIGN.md calls out. Besides wall-clock time, the
// experiment benches report the headline quality number of their figure as
// a custom "AUROC" (or "F1x100") metric so `go test -bench .` reproduces
// the paper's numbers alongside the timings.
package learnrisk_test

import (
	"errors"
	"testing"

	learnrisk "repro"
	"repro/internal/active"
	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/dtree"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/rules"
)

// benchSettings sizes the experiment benches: Quick-scale by default so the
// full suite completes in minutes; raise -benchtime or edit here for
// paper-scale runs (cmd/experiments is the tool for those).
func benchSettings(seed uint64) experiments.Settings {
	s := experiments.Quick()
	s.Scale = 0.03
	s.Seed = seed
	return s
}

// BenchmarkTable2DatasetGeneration regenerates the Table 2 datasets.
func BenchmarkTable2DatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchSettings(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Comparative runs one Figure 9 panel (DS at 3:2:5) with all
// five methods and reports LearnRisk's AUROC.
func BenchmarkFig9Comparative(b *testing.B) {
	var auroc float64
	for i := 0; i < b.N; i++ {
		cell, err := experiments.Fig9Cell("DS", "3:2:5", benchSettings(2))
		if err != nil {
			b.Fatal(err)
		}
		auroc = cell.AUROC["LearnRisk"]
	}
	b.ReportMetric(auroc, "AUROC")
}

// BenchmarkFig10OOD runs the DA2DS out-of-distribution panel.
func BenchmarkFig10OOD(b *testing.B) {
	var auroc float64
	for i := 0; i < b.N; i++ {
		cell, err := experiments.Fig10("DA2DS", benchSettings(3))
		if err != nil {
			b.Fatal(err)
		}
		auroc = cell.AUROC["LearnRisk"]
	}
	b.ReportMetric(auroc, "AUROC")
}

// BenchmarkFig11HoloClean runs the HoloClean comparison on DS subsets.
func BenchmarkFig11HoloClean(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11("DS", 200, 2, benchSettings(4))
		if err != nil {
			b.Fatal(err)
		}
		gap = res.LearnRisk - res.HoloClean
	}
	b.ReportMetric(gap, "AUROC-gap")
}

// BenchmarkFig12Sensitivity runs the risk-training-size sweep on DS.
func BenchmarkFig12Sensitivity(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		pts, err := experiments.Fig12Random("DS", []float64{0.01, 0.20}, benchSettings(5))
		if err != nil {
			b.Fatal(err)
		}
		spread = pts[len(pts)-1].AUROC - pts[0].AUROC
	}
	// The paper's finding is near-flatness: the spread should be small.
	b.ReportMetric(spread, "AUROC-spread")
}

// BenchmarkFig13RuleGen times one-sided rule generation (Figure 13a's
// subject) directly.
func BenchmarkFig13RuleGen(b *testing.B) {
	lab, err := experiments.NewLab("DS", "7:1:2", benchSettings(6))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dtree.GenerateRiskFeatures(lab.TrainX, lab.TrainY, lab.Cat.Names(), lab.Settings.RuleGen)
	}
}

// BenchmarkFig13RiskTraining times risk-model training (Figure 13b's
// subject) directly.
func BenchmarkFig13RiskTraining(b *testing.B) {
	lab, err := experiments.NewLab("DS", "3:5:2", benchSettings(7))
	if err != nil {
		b.Fatal(err)
	}
	rs, sts := lab.GenerateFeatures()
	insts, bad := core.BuildInstances(rules.Apply(rs, lab.ValidX), lab.ValidLab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model, err := core.New(core.BuildFeatures(rs, sts), core.Config{
			Epochs: lab.Settings.RiskEpochs, Seed: lab.Settings.Seed,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := model.Fit(insts, bad); err != nil && !errors.Is(err, core.ErrNoTrainingSignal) {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14ActiveLearning runs one shortened Figure 14 loop and
// reports the final F1 of the LearnRisk selector.
func BenchmarkFig14ActiveLearning(b *testing.B) {
	var f1 float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig14("DS", benchSettings(8), active.Config{
			InitialSize: 48, BatchSize: 24, Rounds: 2,
			Classifier: classifier.Config{Epochs: 10},
			RuleGen:    dtree.OneSidedConfig{MaxDepth: 2, BranchFactor: 3},
			Seed:       8,
		})
		if err != nil {
			b.Fatal(err)
		}
		curve := curves[string(active.LearnRisk)]
		f1 = curve[len(curve)-1].F1
	}
	b.ReportMetric(f1*100, "F1x100")
}

// --- ablation benches (design decisions from DESIGN.md) ---

// ablationLab prepares one shared setup for the ablation benches.
func ablationLab(b *testing.B) (*experiments.Lab, []rules.Rule, []rules.Stat) {
	b.Helper()
	lab, err := experiments.NewLab("DS", "3:2:5", benchSettings(9))
	if err != nil {
		b.Fatal(err)
	}
	rs, sts := lab.GenerateFeatures()
	return lab, rs, sts
}

func runRiskVariant(b *testing.B, lab *experiments.Lab, rs []rules.Rule, sts []rules.Stat, cfg core.Config) float64 {
	b.Helper()
	cfg.Epochs = lab.Settings.RiskEpochs
	cfg.Seed = lab.Settings.Seed
	model, err := core.New(core.BuildFeatures(rs, sts), cfg)
	if err != nil {
		b.Fatal(err)
	}
	validInsts, validBad := core.BuildInstances(rules.Apply(rs, lab.ValidX), lab.ValidLab)
	if err := model.Fit(validInsts, validBad); err != nil && !errors.Is(err, core.ErrNoTrainingSignal) {
		b.Fatal(err)
	}
	testInsts, testBad := core.BuildInstances(rules.Apply(rs, lab.TestX), lab.TestLab)
	return eval.AUROC(model.RiskAll(testInsts), testBad)
}

// BenchmarkAblationNoVariance drops the sigma term (risk = expectation
// only), quantifying the paper's fluctuation-risk argument.
func BenchmarkAblationNoVariance(b *testing.B) {
	lab, rs, sts := ablationLab(b)
	var full, ablated float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		full = runRiskVariant(b, lab, rs, sts, core.Config{})
		ablated = runRiskVariant(b, lab, rs, sts, core.Config{NoVariance: true})
	}
	b.ReportMetric(full, "AUROC-full")
	b.ReportMetric(ablated, "AUROC-novariance")
}

// BenchmarkAblationTruncatedInference compares truncated-normal scoring
// with the smooth surrogate used during training.
func BenchmarkAblationTruncatedInference(b *testing.B) {
	lab, rs, sts := ablationLab(b)
	var truncated, surrogate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		truncated = runRiskVariant(b, lab, rs, sts, core.Config{})
		surrogate = runRiskVariant(b, lab, rs, sts, core.Config{UntruncatedInference: true})
	}
	b.ReportMetric(truncated, "AUROC-truncated")
	b.ReportMetric(surrogate, "AUROC-surrogate")
}

// BenchmarkAblationTwoSidedRules swaps the one-sided risk features for
// two-sided CART-forest labeling rules (Section 7.3's finding: two-sided
// rules have limited efficacy for risk).
func BenchmarkAblationTwoSidedRules(b *testing.B) {
	lab, oneSided, oneStats := ablationLab(b)
	rows := make([]int, len(lab.TrainX))
	for i := range rows {
		rows[i] = i
	}
	forest := dtree.BuildForest(lab.TrainX, lab.TrainY, rows, lab.Cat.Names(), 10,
		dtree.CARTConfig{MaxDepth: 3, Seed: 9})
	twoSided := forest.Rules()
	twoStats := rules.Stats(twoSided, lab.TrainX, lab.TrainY)
	var one, two float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		one = runRiskVariant(b, lab, oneSided, oneStats, core.Config{})
		two = runRiskVariant(b, lab, twoSided, twoStats, core.Config{})
	}
	b.ReportMetric(one, "AUROC-onesided")
	b.ReportMetric(two, "AUROC-twosided")
}

// BenchmarkAblationNoRuleFeatures keeps only the classifier-output feature
// (no interpretable rules), which degenerates toward the Baseline method.
func BenchmarkAblationNoRuleFeatures(b *testing.B) {
	lab, rs, sts := ablationLab(b)
	var withRules, without float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		withRules = runRiskVariant(b, lab, rs, sts, core.Config{})
		without = runRiskVariant(b, lab, nil, nil, core.Config{})
	}
	b.ReportMetric(withRules, "AUROC-withrules")
	b.ReportMetric(without, "AUROC-norules")
}

// BenchmarkPipelineEndToEnd times the whole public-API pipeline once per
// iteration (the quickstart path).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	w, err := generateBench()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runBench(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRiskScoring measures per-pair scoring throughput of a trained
// model (the serving-time cost of risk analysis).
func BenchmarkRiskScoring(b *testing.B) {
	lab, rs, sts := ablationLab(b)
	model, err := core.New(core.BuildFeatures(rs, sts), core.Config{Epochs: 50, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	validInsts, validBad := core.BuildInstances(rules.Apply(rs, lab.ValidX), lab.ValidLab)
	if err := model.Fit(validInsts, validBad); err != nil && !errors.Is(err, core.ErrNoTrainingSignal) {
		b.Fatal(err)
	}
	testInsts, _ := core.BuildInstances(rules.Apply(rs, lab.TestX), lab.TestLab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Risk(testInsts[i%len(testInsts)])
	}
}

// BenchmarkRuleEvaluation measures rule-firing throughput (feature
// extraction at serving time).
func BenchmarkRuleEvaluation(b *testing.B) {
	lab, rs, _ := ablationLab(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := lab.TestX[i%len(lab.TestX)]
		for j := range rs {
			rs[j].Fires(x)
		}
	}
}

// BenchmarkTriageQuality measures the human-machine cooperation payoff: the
// fraction of mislabels a 10% verification budget corrects when spent in
// risk order (r-HUMO application; paper Section 1).
func BenchmarkTriageQuality(b *testing.B) {
	w, err := generateBench()
	if err != nil {
		b.Fatal(err)
	}
	rep, err := runBench(w)
	if err != nil {
		b.Fatal(err)
	}
	var yield float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o, err := rep.Triage(len(rep.Ranking) / 10)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Mislabels > 0 {
			yield = float64(o.Corrected) / float64(rep.Mislabels)
		}
	}
	b.ReportMetric(yield, "mislabels-caught-frac")
}

func generateBench() (*learnrisk.Workload, error) {
	return learnrisk.Generate("DS", 0.02, 10)
}

func runBench(w *learnrisk.Workload) (*learnrisk.Report, error) {
	return learnrisk.Run(w, learnrisk.Options{RiskEpochs: 150, ClassifierEpochs: 15, Seed: 10})
}

// BenchmarkDatasetGeneration measures workload synthesis alone.
func BenchmarkDatasetGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := datagen.Generate(datagen.DS(uint64(i+1)), 0.03); err != nil {
			b.Fatal(err)
		}
	}
}
