package learnrisk_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/featstore"
	"repro/internal/metrics"
)

// The batch-pipeline benchmarks measure the PR's acceptance criterion: the
// streamed blocking -> featstore path against the materialized one on a
// 100k+-record workload (AB at scale 2: ~106k records, ~219k candidate
// pairs), comparing peak heap growth and wall time for the same fold over
// every metric row. Run them through `make bench-pr8`, which records both
// into BENCH_PR8.json.
var (
	batchOnce        sync.Once
	batchLeft        *dataset.Table
	batchRight       *dataset.Table
	batchCat         *metrics.Catalog
	batchFoldSink    float64
	batchMaterialSum float64
	batchStreamSum   float64
)

func batchSetup(b *testing.B) {
	b.Helper()
	batchOnce.Do(func() {
		w := datagen.MustGenerate(datagen.AB(7), 2.0)
		batchLeft, batchRight = w.Left, w.Right
		batchCat = w.Left.Schema.Catalog(w.Left, w.Right)
	})
}

// heapWatcher samples runtime.ReadMemStats on a short ticker and keeps the
// maximum HeapAlloc it sees — the peak live heap during the watched span,
// which total-bytes-allocated (B/op) cannot show.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak {
					w.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

// Peak stops the watcher and returns the peak heap growth over base.
func (w *heapWatcher) Peak(base uint64) uint64 {
	close(w.stop)
	<-w.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > w.peak {
		w.peak = ms.HeapAlloc
	}
	if w.peak <= base {
		return 0
	}
	return w.peak - base
}

func heapBase() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

func BenchmarkBatchPipelineMaterialized(b *testing.B) {
	batchSetup(b)
	b.ReportAllocs()
	var peak uint64
	npairs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := heapBase()
		hw := watchHeap()
		pairs := blocking.Candidates(batchLeft, batchRight, blocking.Config{})
		w := &dataset.Workload{Name: "bench", Left: batchLeft, Right: batchRight, Pairs: pairs}
		store := featstore.New(w, batchCat)
		idx := make([]int, len(pairs))
		for j := range idx {
			idx[j] = j
		}
		sum := 0.0
		for _, row := range store.Rows(idx) {
			for _, v := range row {
				sum += v
			}
		}
		if p := hw.Peak(base); p > peak {
			peak = p
		}
		batchFoldSink, batchMaterialSum, npairs = sum, sum, len(pairs)
	}
	b.StopTimer()
	b.ReportMetric(float64(peak), "peakB")
	b.ReportMetric(float64(npairs), "pairs")
}

func BenchmarkBatchPipelineStreamed(b *testing.B) {
	batchSetup(b)
	b.ReportAllocs()
	var peak uint64
	npairs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := heapBase()
		hw := watchHeap()
		st := featstore.NewStreamer(batchCat, batchLeft, batchRight, 0)
		sum := 0.0
		n, err := st.Run(blocking.CandidateSeq(batchLeft, batchRight, blocking.Config{}), nil,
			func(_ int, _ []dataset.Pair, rows [][]float64) error {
				for _, row := range rows {
					for _, v := range row {
						sum += v
					}
				}
				return nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if p := hw.Peak(base); p > peak {
			peak = p
		}
		batchFoldSink, batchStreamSum, npairs = sum, sum, n
	}
	b.StopTimer()
	b.ReportMetric(float64(peak), "peakB")
	b.ReportMetric(float64(npairs), "pairs")
}

// TestBatchPipelineBenchesAgree keeps the two benchmark bodies honest: the
// streamed fold visits the exact pair set and row values the materialized
// fold does (on a small workload, so plain `go test` stays fast).
func TestBatchPipelineBenchesAgree(t *testing.T) {
	w := datagen.MustGenerate(datagen.AB(7), 0.05)
	cat := w.Left.Schema.Catalog(w.Left, w.Right)

	pairs := blocking.Candidates(w.Left, w.Right, blocking.Config{})
	mw := &dataset.Workload{Name: "agree", Left: w.Left, Right: w.Right, Pairs: pairs}
	store := featstore.New(mw, cat)
	idx := make([]int, len(pairs))
	for j := range idx {
		idx[j] = j
	}
	matSum := 0.0
	for _, row := range store.Rows(idx) {
		for _, v := range row {
			matSum += v
		}
	}

	st := featstore.NewStreamer(cat, w.Left, w.Right, 64)
	strSum := 0.0
	n, err := st.Run(blocking.CandidateSeq(w.Left, w.Right, blocking.Config{}), nil,
		func(_ int, _ []dataset.Pair, rows [][]float64) error {
			for _, row := range rows {
				for _, v := range row {
					strSum += v
				}
			}
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(pairs) {
		t.Fatalf("streamed %d pairs, materialized %d", n, len(pairs))
	}
	if matSum != strSum {
		t.Fatalf("fold sums diverge: materialized %v, streamed %v", matSum, strSum)
	}
}
