package learnrisk

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndRunEndToEnd(t *testing.T) {
	w, err := Generate("DS", 0.02, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "DS" || w.Size() == 0 || w.Matches() == 0 || w.Attributes() != 4 {
		t.Fatalf("workload stats: name=%s size=%d matches=%d attrs=%d",
			w.Name(), w.Size(), w.Matches(), w.Attributes())
	}
	rep, err := Run(w, Options{RiskEpochs: 200, ClassifierEpochs: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Ranking) == 0 {
		t.Fatal("empty ranking")
	}
	// Ranking is sorted by descending risk.
	for i := 1; i < len(rep.Ranking); i++ {
		if rep.Ranking[i].Risk > rep.Ranking[i-1].Risk {
			t.Fatal("ranking not sorted")
		}
	}
	if rep.AUROC < 0.7 {
		t.Errorf("pipeline AUROC %.3f < 0.7", rep.AUROC)
	}
	if rep.NumFeatures == 0 || rep.RuleCoverage == 0 {
		t.Errorf("no risk features generated: %d features, coverage %.2f",
			rep.NumFeatures, rep.RuleCoverage)
	}
	if rep.ClassifierF1 <= 0 || rep.ClassifierAccuracy <= 0.5 {
		t.Errorf("classifier quality: F1=%.3f acc=%.3f", rep.ClassifierF1, rep.ClassifierAccuracy)
	}
	// Explanations exist for every ranked pair and include the classifier.
	exp := r0Explain(t, rep)
	if len(exp) == 0 {
		t.Fatal("no explanation for top-risk pair")
	}
	foundClassifier := false
	for _, line := range exp {
		if strings.Contains(line, "classifier output") {
			foundClassifier = true
		}
	}
	if !foundClassifier {
		t.Errorf("explanation missing classifier feature: %v", exp)
	}
	if feats := rep.Features(); len(feats) != rep.NumFeatures {
		t.Errorf("Features() length %d != NumFeatures %d", len(feats), rep.NumFeatures)
	}
	// PairValues round trip.
	l, r := w.PairValues(rep.Ranking[0].PairIndex)
	if len(l) != 4 || len(r) != 4 {
		t.Error("PairValues arity mismatch")
	}
	if len(w.AttrNames()) != 4 {
		t.Error("AttrNames arity mismatch")
	}
}

func r0Explain(t *testing.T, rep *Report) []string {
	t.Helper()
	return rep.Explain(rep.Ranking[0])
}

func TestExplainUnknownPair(t *testing.T) {
	w, _ := Generate("AB", 0.02, 3)
	rep, err := Run(w, Options{RiskEpochs: 100, ClassifierEpochs: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Explain(RankedPair{PairIndex: -1}); got != nil {
		t.Errorf("unknown pair should yield nil, got %v", got)
	}
}

func TestRiskRankingSeparatesMislabels(t *testing.T) {
	w, _ := Generate("DS", 0.02, 11)
	rep, err := Run(w, Options{RiskEpochs: 300, ClassifierEpochs: 25, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mislabels == 0 {
		t.Skip("no mislabels in this configuration")
	}
	// The top decile of the ranking should hold a disproportionate share
	// of the mislabels (that is the entire point of the system).
	top := len(rep.Ranking) / 10
	if top < 1 {
		top = 1
	}
	topBad := 0
	for _, rp := range rep.Ranking[:top] {
		if rp.Mislabeled {
			topBad++
		}
	}
	baseRate := float64(rep.Mislabels) / float64(len(rep.Ranking))
	topRate := float64(topBad) / float64(top)
	if topRate < 2*baseRate {
		t.Errorf("top-decile mislabel rate %.3f not >= 2x base rate %.3f", topRate, baseRate)
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate("NOPE", 1, 1); err == nil {
		t.Error("unknown profile should fail")
	}
	if _, err := Generate("DS", 0, 1); err == nil {
		t.Error("zero scale should fail")
	}
}

func TestRunErrors(t *testing.T) {
	w, _ := Generate("DS", 0.02, 1)
	if _, err := Run(w, Options{SplitRatio: "bogus"}); err == nil {
		t.Error("bad ratio should fail")
	}
}

func TestLoadCSVWithBlockingAndWithPairs(t *testing.T) {
	dir := t.TempDir()
	leftCSV := "id,entity_id,title,year\nl0,e0,spatial join methods,1993\nl1,e1,query optimization,1998\n"
	rightCSV := "id,entity_id,title,year\nr0,e0,spatial join methods survey,1993\nr1,e1,query optimization techniques,1998\n"
	pairsCSV := "left_id,right_id,match\nl0,r0,1\nl1,r1,1\nl0,r1,0\n"
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	lp := write("left.csv", leftCSV)
	rp := write("right.csv", rightCSV)
	pp := write("pairs.csv", pairsCSV)
	attrs := []Attr{{Name: "title", Type: "text"}, {Name: "year", Type: "numeric"}}

	withPairs, err := LoadCSV("csvtest", lp, rp, pp, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if withPairs.Size() != 3 || withPairs.Matches() != 2 {
		t.Errorf("with pairs: size=%d matches=%d", withPairs.Size(), withPairs.Matches())
	}

	blocked, err := LoadCSV("csvtest2", lp, rp, "", attrs)
	if err != nil {
		t.Fatal(err)
	}
	if blocked.Size() == 0 || blocked.Matches() != 2 {
		t.Errorf("blocked: size=%d matches=%d", blocked.Size(), blocked.Matches())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	attrs := []Attr{{Name: "a", Type: "text"}}
	if _, err := LoadCSV("x", "/nonexistent", "/nonexistent", "", attrs); err == nil {
		t.Error("missing file should fail")
	}
	if _, err := LoadCSV("x", "a", "b", "", nil); err == nil {
		t.Error("empty schema should fail")
	}
	if _, err := LoadCSV("x", "a", "b", "", []Attr{{Name: "a", Type: "bogus"}}); err == nil {
		t.Error("bad attr type should fail")
	}
}

func TestRunDeterministic(t *testing.T) {
	w, _ := Generate("AG", 0.03, 5)
	run := func() *Report {
		rep, err := Run(w, Options{RiskEpochs: 80, ClassifierEpochs: 10, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.AUROC != b.AUROC || len(a.Ranking) != len(b.Ranking) {
		t.Fatal("pipeline not deterministic")
	}
	for i := range a.Ranking {
		if a.Ranking[i] != b.Ranking[i] {
			t.Fatal("ranking not deterministic")
		}
	}
}
