package learnrisk

import (
	"fmt"
	"time"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/partition"
)

// The partitioned resolve path: a PartitionedMatchStore consistent-hashes
// records across N independent match partitions and answers Resolve by
// scatter-gather — every partition ranks the probe concurrently on the
// pooled zero-allocation scoring path, and the per-partition top-k heaps
// merge into one order-stable result that is bit-identical (order
// included) to Model.Resolve against a single flat store over the same
// records. See internal/partition for the routing design (global ID
// allocation, jump consistent hashing, the global token census that keeps
// stop-token pruning exact).

// PartitionedMatchStore is the partitioned online record store (an alias,
// see MatchConfig for why). Safe for concurrent use.
type PartitionedMatchStore = partition.Store

// ScoredMatch is one ranked resolve entry: the record ID and its rank (the
// classifier probability on the model's scoring path). An alias of the
// internal heap's element so partition scorers and the facade share it.
type ScoredMatch = match.Scored

// NewPartitionedMatchStore builds an empty in-memory partitioned store
// bound to the model's schema: partitions independent match stores behind
// one router, records routed by consistent-hashed global IDs, probes
// scattered to all partitions and gathered through an order-stable top-k
// merge, with cfg.MaxBlockSize enforced globally by the router's token
// census. replicas > 1 adds read-replica fan-out per partition
// (power-of-two-choices on in-flight counts).
func (m *Model) NewPartitionedMatchStore(partitions, replicas int, cfg MatchConfig) (*PartitionedMatchStore, error) {
	return partition.New(len(m.attrs), partition.Options{
		Partitions: partitions,
		Replicas:   replicas,
		Match:      cfg,
		Scorer:     m,
	})
}

// OpenDurablePartitionedMatchStore opens (creating if needed) a durable
// partitioned store rooted at dir: each partition persists into its own
// part-NNN subdirectory (WAL + snapshots), partitions replay concurrently
// at open, and the partition count is fixed at the dir's creation.
// progress, when non-nil, receives per-partition replay progress.
func (m *Model) OpenDurablePartitionedMatchStore(dir string, partitions, replicas int, cfg MatchConfig, opts DurableMatchOptions, progress func(part int, phase string, done, total int)) (*PartitionedMatchStore, error) {
	return partition.OpenDurable(dir, len(m.attrs), partition.Options{
		Partitions: partitions,
		Replicas:   replicas,
		Match:      cfg,
		Scorer:     m,
		Durable:    opts,
		Progress:   progress,
	})
}

// ResolveShard ranks one probe against a single partition's store,
// honoring the router's skip list (globally pruned stop tokens, sorted
// ascending): up to k entries, Prob descending, ties toward the lower
// record ID. It is the per-partition leg of the scatter-gather resolve —
// Model implements partition.Scorer through it — and reuses the pooled
// resolve scratch, so the scoring path stays allocation-free in steady
// state.
func (m *Model) ResolveShard(st *MatchStore, probe []string, k int, skip []string) ([]ScoredMatch, error) {
	if err := m.checkResolve(st, probe, k); err != nil {
		return nil, err
	}
	s := m.acquireResolveScratch()
	m.rankInto(st, probe, k, skip, s, nil)
	out := make([]ScoredMatch, len(s.sorted))
	for i, e := range s.sorted {
		out[i] = ScoredMatch{ID: s.kept[e.ID], Rank: s.scores[e.ID].Prob}
	}
	m.resolvePool.Put(s)
	return out, nil
}

// ResolvePartitioned finds the k best-scoring matches for one probe among
// a partitioned store's live records: the router prunes stop tokens from
// its global census, every partition ranks the probe concurrently through
// ResolveShard, and the merged top k is re-scored into full verdicts.
// The ranked slice is bit-identical to Model.Resolve against one flat
// store holding the same records (the cross-layer equivalence test pins
// this). Safe for concurrent use, including with Add/Delete on the store.
func (m *Model) ResolvePartitioned(ps *PartitionedMatchStore, probe []string, k int) ([]MatchResult, error) {
	return m.ResolvePartitionedTraced(ps, probe, k, nil)
}

// ResolvePartitionedTraced is ResolvePartitioned with request-scoped
// stage timing: the router records census pruning, the scatter (with
// slowest-partition attribution) and the merge; the winner re-scoring
// here lands on StageScore. A nil trace records nothing.
func (m *Model) ResolvePartitionedTraced(ps *PartitionedMatchStore, probe []string, k int, tr *Trace) ([]MatchResult, error) {
	if ps == nil {
		return nil, fmt.Errorf("learnrisk: ResolvePartitioned needs a partitioned store (build one with NewPartitionedMatchStore)")
	}
	if ps.Arity() != len(m.attrs) {
		return nil, fmt.Errorf("learnrisk: partitioned store arity %d does not match the model schema's %d", ps.Arity(), len(m.attrs))
	}
	ranked, err := ps.ResolveTraced(probe, k, tr)
	if err != nil {
		return nil, err
	}
	// Re-score the winners into full verdicts: k is small and scorePair is
	// deterministic, so the Prob of each re-scored pair is bit-identical to
	// the rank the merge ordered it by.
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	s := m.acquireScratch()
	out := make([]MatchResult, 0, len(ranked))
	for _, e := range ranked {
		vals, ok := ps.Get(e.ID)
		if !ok {
			continue // deleted between merge and fetch; the verdict is gone with it
		}
		out = append(out, MatchResult{ID: e.ID, Score: m.scorePair(Pair{Left: probe, Right: vals}, s)})
	}
	m.pool.Put(s)
	if tr != nil {
		tr.Observe(obs.StageScore, t0)
	}
	return out, nil
}
