// Command bench runs the repository's Benchmark* suite (go test -bench .
// -benchmem) and records the results — ns/op, allocs/op, bytes/op and the
// custom quality metrics (AUROC, F1x100, ...) the experiment benches report
// — as JSON, so successive PRs can diff the perf trajectory without parsing
// benchmark output by hand.
//
// Usage:
//
//	go run ./cmd/bench -out BENCH_PR1.json -label current
//	go run ./cmd/bench -parse saved-bench-output.txt -label baseline
//	go run ./cmd/bench -out BENCH_PR4.json -bench 'Serve' -cpuprofile cpu.prof -memprofile mem.prof
//
// -cpuprofile/-memprofile pass straight through to go test, so a recorded
// section and the profile that explains it come from the same run.
//
// The output file holds one section per label (e.g. "baseline" captured
// before a change and "current" after); writing a label replaces that
// section and preserves the others. The quality metrics ride along so a
// speedup can be checked against unchanged reported AUROC/F1.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

type section struct {
	Go         string            `json:"go"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	BenchFlags string            `json:"bench_flags"`
	Results    map[string]result `json:"results"`
}

func main() {
	out := flag.String("out", "BENCH_PR1.json", "output JSON file (updated in place)")
	label := flag.String("label", "current", "section to write (e.g. baseline, current)")
	benchtime := flag.String("benchtime", "3x", "go test -benchtime value")
	benchRE := flag.String("bench", ".", "go test -bench pattern")
	parse := flag.String("parse", "", "parse an existing `go test -bench` output file instead of running the suite")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the bench run to this file (passed to go test)")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the bench run to this file (passed to go test)")
	compare := flag.String("compare", "", "after recording, print an A,B ratio summary of two benchmarks (names without the Benchmark prefix)")
	flag.Parse()

	var raw []byte
	flags := fmt.Sprintf("-bench %s -benchmem -benchtime %s", *benchRE, *benchtime)
	if *parse != "" {
		var err error
		raw, err = os.ReadFile(*parse)
		if err != nil {
			fatal(err)
		}
		flags = "(parsed from " + *parse + ")"
	} else {
		args := []string{"test", "-run", "^$", "-bench", *benchRE,
			"-benchmem", "-benchtime", *benchtime, "-count", "1", "-timeout", "3600s"}
		if *cpuprofile != "" {
			args = append(args, "-cpuprofile", *cpuprofile)
		}
		if *memprofile != "" {
			args = append(args, "-memprofile", *memprofile)
		}
		args = append(args, ".")
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		var buf bytes.Buffer
		cmd.Stdout = &buf
		fmt.Fprintf(os.Stderr, "bench: running go test %s ...\n", flags)
		if err := cmd.Run(); err != nil {
			fatal(fmt.Errorf("go test: %w", err))
		}
		raw = buf.Bytes()
	}

	results, err := parseBench(raw)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no Benchmark results found"))
	}

	doc := map[string]json.RawMessage{}
	if existing, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(existing, &doc); err != nil {
			fatal(fmt.Errorf("%s exists but is not JSON: %w", *out, err))
		}
	}
	sec := section{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchFlags: flags,
		Results:    results,
	}
	enc, err := json.MarshalIndent(sec, "", "  ")
	if err != nil {
		fatal(err)
	}
	doc[*label] = enc
	final, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(final, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "bench: wrote %d results to %s section %q\n", len(results), *out, *label)
	if *compare != "" {
		if err := printCompare(results, *compare); err != nil {
			fatal(err)
		}
	}
}

// printCompare prints a ratio summary of two recorded benchmarks — A's cost
// over B's for wall time, allocation totals and any custom metric both
// report (e.g. the peakB bytes the batch-pipeline benches emit), so a
// before/after acceptance bar can be read off the bench run directly.
func printCompare(results map[string]result, spec string) error {
	names := strings.Split(spec, ",")
	if len(names) != 2 {
		return fmt.Errorf("-compare wants two comma-separated benchmark names, got %q", spec)
	}
	na, nb := strings.TrimSpace(names[0]), strings.TrimSpace(names[1])
	a, ok := results[na]
	if !ok {
		return fmt.Errorf("-compare: no result named %q in this run", na)
	}
	b, ok := results[nb]
	if !ok {
		return fmt.Errorf("-compare: no result named %q in this run", nb)
	}
	ratio := func(x, y float64) string {
		if y == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.2fx", x/y)
	}
	fmt.Printf("compare %s vs %s (A/B ratios):\n", na, nb)
	fmt.Printf("  ns/op      %14.0f  %14.0f  %s\n", a.NsPerOp, b.NsPerOp, ratio(a.NsPerOp, b.NsPerOp))
	fmt.Printf("  B/op       %14d  %14d  %s\n", a.BytesPerOp, b.BytesPerOp, ratio(float64(a.BytesPerOp), float64(b.BytesPerOp)))
	fmt.Printf("  allocs/op  %14d  %14d  %s\n", a.AllocsPerOp, b.AllocsPerOp, ratio(float64(a.AllocsPerOp), float64(b.AllocsPerOp)))
	units := make([]string, 0, len(a.Metrics))
	for u := range a.Metrics {
		if _, ok := b.Metrics[u]; ok {
			units = append(units, u)
		}
	}
	sort.Strings(units)
	for _, u := range units {
		fmt.Printf("  %-9s  %14.0f  %14.0f  %s\n", u, a.Metrics[u], b.Metrics[u], ratio(a.Metrics[u], b.Metrics[u]))
	}
	return nil
}

// parseBench extracts Benchmark lines from `go test -bench` output. Each
// line has tab-separated cells: name, iterations, then "value unit" pairs
// (ns/op, B/op, allocs/op, and any custom ReportMetric units).
func parseBench(raw []byte) (map[string]result, error) {
	results := map[string]result{}
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		cells := strings.Split(line, "\t")
		if len(cells) < 3 {
			continue
		}
		name := strings.TrimSpace(cells[0])
		// Strip the -GOMAXPROCS suffix go test appends when procs > 1.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		name = strings.TrimPrefix(name, "Benchmark")
		iters, err := strconv.ParseInt(strings.TrimSpace(cells[1]), 10, 64)
		if err != nil {
			continue
		}
		r := result{Iterations: iters}
		for _, cell := range cells[2:] {
			fields := strings.Fields(cell)
			if len(fields) != 2 {
				continue
			}
			v, err := strconv.ParseFloat(fields[0], 64)
			if err != nil {
				continue
			}
			switch fields[1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[fields[1]] = v
			}
		}
		results[name] = r
	}
	return results, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
