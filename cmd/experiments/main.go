// Command experiments regenerates every table and figure of the paper's
// evaluation on the synthetic benchmark-shaped workloads:
//
//	experiments -exp all            # everything (laptop-scale by default)
//	experiments -exp fig9 -scale 0.1
//	experiments -exp table2
//
// Experiments: table2, illustrations, fig9, fig10, fig11, fig12, fig13,
// fig14, all.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/active"
	"repro/internal/classifier"
	"repro/internal/dtree"
	"repro/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment to run: table2|illustrations|fig9|fig10|fig11|fig12|fig13|fig14|all")
		scale = flag.Float64("scale", 0.1, "dataset scale relative to paper Table 2")
		seed  = flag.Uint64("seed", 1, "master random seed")
		quick = flag.Bool("quick", false, "use test-sized settings (fast smoke run)")
	)
	flag.Parse()

	s := experiments.Default()
	if *quick {
		s = experiments.Quick()
	}
	s.Scale = *scale
	if *quick && !flagPassed("scale") {
		s.Scale = experiments.Quick().Scale
	}
	s.Seed = *seed

	if err := run(*exp, s); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func flagPassed(name string) bool {
	passed := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			passed = true
		}
	})
	return passed
}

func run(exp string, s experiments.Settings) error {
	switch exp {
	case "table2":
		return table2(s)
	case "illustrations":
		fmt.Println(experiments.Illustrations())
		return nil
	case "calibration":
		out, err := experiments.CalibrationClaim("DS", s)
		if err != nil {
			return err
		}
		fmt.Println(out)
		return nil
	case "fig9":
		return fig9(s)
	case "fig10":
		return fig10(s)
	case "fig11":
		return fig11(s)
	case "fig12":
		return fig12(s)
	case "fig13":
		return fig13(s)
	case "fig14":
		return fig14(s)
	case "noise":
		return noiseSweep(s)
	case "all":
		for _, e := range []string{"table2", "illustrations", "calibration", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "noise"} {
			if err := run(e, s); err != nil {
				return fmt.Errorf("%s: %w", e, err)
			}
		}
		return nil
	}
	return fmt.Errorf("unknown experiment %q", exp)
}

func table2(s experiments.Settings) error {
	sts, err := experiments.Table2(s)
	if err != nil {
		return err
	}
	fmt.Printf("== Table 2 — dataset statistics (scale %.2f of the paper's sizes) ==\n", s.Scale)
	fmt.Println(experiments.FormatTable2(sts))
	return nil
}

func fig9(s experiments.Settings) error {
	fmt.Println("== Figure 9 — comparative evaluation (AUROC per method) ==")
	cells, err := experiments.Fig9(s)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatCells(cells))
	return nil
}

func fig10(s experiments.Settings) error {
	fmt.Println("== Figure 10 — out-of-distribution evaluation ==")
	var cells []*experiments.CellResult
	for _, name := range experiments.Fig10Workloads() {
		cell, err := experiments.Fig10(name, s)
		if err != nil {
			return err
		}
		cells = append(cells, cell)
	}
	fmt.Println(experiments.FormatCells(cells))
	return nil
}

func fig11(s experiments.Settings) error {
	fmt.Println("== Figure 11 — comparison with HoloClean (mean AUROC over subsets) ==")
	var results []*experiments.Fig11Result
	for _, d := range experiments.Fig9Datasets() {
		pairs := 1000
		if d == "SG" {
			pairs = 2000
		}
		r, err := experiments.Fig11(d, pairs, 5, s)
		if err != nil {
			return err
		}
		results = append(results, r)
	}
	fmt.Println(experiments.FormatFig11(results))
	return nil
}

func fig12(s experiments.Settings) error {
	fmt.Println("== Figure 12 — sensitivity to risk-training data size ==")
	for _, d := range []string{"DS", "AB"} {
		pts, err := experiments.Fig12Random(d, []float64{0.01, 0.05, 0.10, 0.15, 0.20}, s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSensitivity(d+" (random sampling)", pts))
		apts, err := experiments.Fig12Active(d, []int{100, 200, 300, 400}, s)
		if err != nil {
			return err
		}
		fmt.Println(experiments.FormatSensitivity(d+" (active selection)", apts))
	}
	return nil
}

func fig13(s experiments.Settings) error {
	fmt.Println("== Figure 13 — scalability on DS ==")
	sizes := []int{500, 1000, 1500, 2000, 2500}
	rg, err := experiments.Fig13RuleGen("DS", sizes, s)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatScalability("(a) rule generation runtime", rg))
	rt, err := experiments.Fig13RiskTraining("DS", []int{250, 500, 1000, 1500, 2000}, s)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatScalability("(b) risk-model training runtime", rt))
	return nil
}

func noiseSweep(s experiments.Settings) error {
	fmt.Println("== Dirtiness sweep on DS (extension experiment) ==")
	pts, err := experiments.NoiseSweep("DS", []float64{0.15, 0.3, 0.45, 0.6, 0.75}, s)
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatNoiseSweep(pts))
	return nil
}

func fig14(s experiments.Settings) error {
	fmt.Println("== Figure 14 — ER active learning on DS ==")
	curves, err := experiments.Fig14("DS", s, active.Config{
		InitialSize: 128, BatchSize: 64, Rounds: 9,
		Classifier: classifier.Config{Epochs: 25},
		RuleGen:    dtree.OneSidedConfig{MaxDepth: 2, BranchFactor: 4},
		Seed:       s.Seed,
	})
	if err != nil {
		return err
	}
	fmt.Println(experiments.FormatFig14(curves))
	return nil
}
