// vetkit is the repo's invariant checker: a multichecker over the six
// project-specific analyzers in internal/analysis/..., run by `make lint`
// (and therefore `make tier1`) over the whole tree. It exits non-zero on
// any finding, so an invariant regression fails the gate exactly like a
// broken test.
//
//	vetkit [-json] [-q] [packages...]
//
// With no package patterns it analyzes ./.... Each analyzer prints a
// summary line (packages and files scanned, findings) so a regression is
// attributable at a glance; -json emits the same data machine-readably for
// CI consumption; -q suppresses the summary and prints findings only.
//
// The analyzers and the contracts they encode:
//
//	hotpath         //vetkit:hotpath functions are allocation-free
//	walbeforeapply  //vetkit:wal-before-apply methods log before applying
//	lockdiscipline  no mutex copies; Lock pairs with Unlock on all paths
//	closecheck      Close/Sync errors on writable files are checked
//	expvarlint      expvar names are snake_case, registered exactly once
//	metriclint      obs.Registry names are snake_case, registered exactly
//	                once, and never registered from a hotpath function
//
// See the README's "Static analysis" section for the annotation
// vocabulary and how to extend the suite.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/closecheck"
	"repro/internal/analysis/expvarlint"
	"repro/internal/analysis/hotpath"
	"repro/internal/analysis/lockcheck"
	"repro/internal/analysis/metriclint"
	"repro/internal/analysis/walapply"
)

// analyzers is the suite, in the order summaries print.
var analyzers = []*analysis.Analyzer{
	hotpath.Analyzer,
	walapply.Analyzer,
	lockcheck.Analyzer,
	closecheck.Analyzer,
	expvarlint.Analyzer,
	metriclint.Analyzer,
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and summaries as JSON (for CI)")
	quiet := flag.Bool("q", false, "suppress per-analyzer summary lines")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vetkit [-json] [-q] [packages...]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	prog, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	results, err := analysis.Run(prog, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	total := 0
	for _, res := range results {
		total += len(res.Findings)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Results  []analysis.Result `json:"results"`
			Findings int               `json:"findings"`
		}{results, total}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, res := range results {
			for _, d := range res.Findings {
				fmt.Println(d)
			}
		}
		if !*quiet {
			for _, res := range results {
				fmt.Printf("vetkit: %-15s packages=%-3d files=%-3d findings=%d\n",
					res.Analyzer, res.Packages, res.Files, len(res.Findings))
			}
		}
	}
	if total > 0 {
		os.Exit(1)
	}
}
