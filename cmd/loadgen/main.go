// Command loadgen turns "the resolve path holds up under heavy traffic"
// into a measured curve: a closed-loop driver steps client concurrency
// over a mixed add/delete/resolve workload against the serving HTTP API
// and records throughput and p50/p95/p99 resolve latency per step as
// JSON — the same per-label section schema cmd/bench writes, so the
// partitioned and flat configurations diff with the same tooling.
//
// Self-hosted (trains a model on a synthetic workload, serves it
// in-process on a loopback listener, then drives it):
//
//	loadgen -partitions 4 -steps 1,2,4,8,16 -out BENCH_PR9.json -label parts-4
//
// Or drive an already-running server (the payload records still come from
// the synthetic profile, which must match the served schema):
//
//	loadgen -addr http://localhost:8080 -steps 4,8 -label remote
//
// Closed loop means each of the C virtual clients keeps exactly one
// request in flight: offered load rises with C, and the latency curve's
// knee — where p99 turns up while throughput flattens — is the serving
// capacity. 429 back-pressure refusals are counted separately (throttled
// mutations are the bounded ingest queue working, not errors).
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	learnrisk "repro"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "", "base URL of a running server (e.g. http://localhost:8080); empty self-hosts one in-process")
		partitions = flag.Int("partitions", 0, "self-host: partition the match store across this many partitions (0 = flat)")
		replicas   = flag.Int("replicas", 1, "self-host: read replicas per partition")
		maxPending = flag.Int("max-pending", 0, "self-host: bounded ingest queue (0 = default 256 with partitions)")
		profile    = flag.String("profile", "AB", "synthetic profile for the model and payload records: DS|AB|AG|SG|DA")
		scale      = flag.Float64("scale", 0.05, "synthetic dataset scale")
		seed       = flag.Uint64("seed", 11, "seed for training, payloads and the op mix")
		stepsFlag  = flag.String("steps", "1,2,4,8,16", "comma-separated client concurrency steps")
		stepDur    = flag.Duration("step-duration", 2*time.Second, "measured duration per concurrency step")
		k          = flag.Int("k", 5, "matches requested per resolve")
		addFrac    = flag.Float64("add-frac", 0.10, "fraction of operations that add a record")
		delFrac    = flag.Float64("delete-frac", 0.05, "fraction of operations that delete one")
		preload    = flag.Int("preload", 400, "records ingested before the measured steps")
		out        = flag.String("out", "BENCH_PR9.json", "output JSON file (updated in place, cmd/bench schema)")
		label      = flag.String("label", "current", "section to write (e.g. parts-1, parts-4)")
	)
	flag.Parse()

	steps, err := parseSteps(*stepsFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *addFrac < 0 || *delFrac < 0 || *addFrac+*delFrac >= 1 {
		log.Fatalf("op mix add=%g delete=%g leaves no resolves", *addFrac, *delFrac)
	}

	w, err := learnrisk.Generate(*profile, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	base := *addr
	if base == "" {
		m, err := learnrisk.Train(context.Background(), w, learnrisk.Options{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		srv := server.New(m, server.Config{
			Partitions: *partitions,
			Replicas:   *replicas,
			MaxPending: *maxPending,
			Obs:        obs.NewRegistry(),
		})
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		defer hs.Close()
		base = "http://" + ln.Addr().String()
		log.Printf("self-hosted %s server on %s (partitions=%d replicas=%d)", *profile, base, *partitions, *replicas)
	}

	cfg := loadConfig{
		Base:    base,
		Pay:     newPayloads(w),
		Steps:   steps,
		StepDur: *stepDur,
		K:       *k,
		AddFrac: *addFrac,
		DelFrac: *delFrac,
		Preload: *preload,
		Seed:    int64(*seed),
	}
	results, err := runLoad(cfg)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("c=%-3d  %8.0f ops/s  %8.0f resolves/s  p50 %8s  p95 %8s  p99 %8s  throttled %d\n",
			r.Concurrency, r.OpsPerSec(), r.ResolvesPerSec(), r.P50, r.P95, r.P99, r.Throttled)
	}
	flags := fmt.Sprintf("loadgen -steps %s -step-duration %s -k %d -add-frac %g -delete-frac %g -preload %d (profile %s, partitions %d, replicas %d)",
		*stepsFlag, *stepDur, *k, *addFrac, *delFrac, *preload, *profile, *partitions, *replicas)
	if err := writeResults(*out, *label, flags, results); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote section %q to %s", *label, *out)
}

// parseSteps parses the -steps list into ascending positive ints.
func parseSteps(s string) ([]int, error) {
	var steps []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("loadgen: bad concurrency step %q", part)
		}
		steps = append(steps, n)
	}
	if len(steps) == 0 {
		return nil, fmt.Errorf("loadgen: no concurrency steps")
	}
	return steps, nil
}

// loadConfig is one load run: the target, the payload source and the shape
// of the offered load.
type loadConfig struct {
	Base    string
	Pay     *payloads
	Steps   []int
	StepDur time.Duration
	K       int
	AddFrac float64
	DelFrac float64
	Preload int
	Seed    int64
}

// stepResult is one concurrency step's measurement.
type stepResult struct {
	Concurrency int
	Ops         int64 // completed operations (all kinds)
	Resolves    int64
	Adds        int64
	Deletes     int64
	Throttled   int64 // 429 back-pressure refusals (counted, not errors)
	Failed      int64 // non-2xx answers that are not 429 or delete-404
	Elapsed     time.Duration
	P50         time.Duration // resolve latency percentiles
	P95         time.Duration
	P99         time.Duration
	MeanResolve time.Duration
	// Server holds the server-side stage latencies scraped from GET
	// /metrics after the step — where inside the server the client-visible
	// latency above was spent. Empty when the target has no /metrics.
	Server map[string]float64
}

func (r stepResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

func (r stepResult) ResolvesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Resolves) / r.Elapsed.Seconds()
}

// runLoad preloads the store, then walks the concurrency steps: C workers
// per step, each a closed loop (one request in flight), latencies of the
// resolve leg recorded per worker and merged.
func runLoad(cfg loadConfig) ([]stepResult, error) {
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 256,
	}}
	payload := cfg.Pay

	// Preload so resolves rank against a populated index from step one.
	// Back-pressure refusals here just pace the loop — the queue asked us
	// to slow down, so we do.
	var maxID atomic.Uint64
	for i := 0; i < cfg.Preload; i++ {
		for {
			id, status, err := postRecord(client, cfg.Base, payload.record(i))
			if err != nil {
				return nil, fmt.Errorf("preload record %d: %w", i, err)
			}
			if status == http.StatusTooManyRequests {
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if status != http.StatusOK {
				return nil, fmt.Errorf("preload record %d: HTTP %d", i, status)
			}
			maxID.Store(id + 1)
			break
		}
	}

	results := make([]stepResult, 0, len(cfg.Steps))
	for _, c := range cfg.Steps {
		res := stepResult{Concurrency: c}
		var (
			wg        sync.WaitGroup
			lats      = make([][]time.Duration, c)
			stop      = make(chan struct{})
			workerErr atomic.Pointer[error]
		)
		start := time.Now()
		for wi := 0; wi < c; wi++ {
			wg.Add(1)
			go func(wi int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(wi)*7919 + int64(c)*104729))
				lat := make([]time.Duration, 0, 4096)
				for {
					select {
					case <-stop:
						lats[wi] = lat
						return
					default:
					}
					switch p := rng.Float64(); {
					case p < cfg.AddFrac:
						id, status, err := postRecord(client, cfg.Base, payload.record(rng.Intn(payload.n)))
						if err != nil {
							workerErr.CompareAndSwap(nil, &err)
							lats[wi] = lat
							return
						}
						switch status {
						case http.StatusOK:
							atomic.AddInt64(&res.Adds, 1)
							for {
								cur := maxID.Load()
								if id < cur || maxID.CompareAndSwap(cur, id+1) {
									break
								}
							}
						case http.StatusTooManyRequests:
							atomic.AddInt64(&res.Throttled, 1)
						default:
							atomic.AddInt64(&res.Failed, 1)
						}
					case p < cfg.AddFrac+cfg.DelFrac:
						status, err := deleteRecord(client, cfg.Base, rng.Uint64()%(maxID.Load()+1))
						if err != nil {
							workerErr.CompareAndSwap(nil, &err)
							lats[wi] = lat
							return
						}
						switch status {
						case http.StatusOK:
							atomic.AddInt64(&res.Deletes, 1)
						case http.StatusNotFound: // already gone: still a served op
							atomic.AddInt64(&res.Deletes, 1)
						case http.StatusTooManyRequests:
							atomic.AddInt64(&res.Throttled, 1)
						default:
							atomic.AddInt64(&res.Failed, 1)
						}
					default:
						t0 := time.Now()
						status, err := postResolve(client, cfg.Base, payload.probe(rng.Intn(payload.n)), cfg.K)
						if err != nil {
							workerErr.CompareAndSwap(nil, &err)
							lats[wi] = lat
							return
						}
						if status != http.StatusOK {
							atomic.AddInt64(&res.Failed, 1)
							continue
						}
						lat = append(lat, time.Since(t0))
						atomic.AddInt64(&res.Resolves, 1)
					}
				}
			}(wi)
		}
		time.Sleep(cfg.StepDur)
		close(stop)
		wg.Wait()
		res.Elapsed = time.Since(start)
		if errp := workerErr.Load(); errp != nil {
			return nil, fmt.Errorf("c=%d worker: %w", c, *errp)
		}
		all := mergeLatencies(lats)
		res.P50, res.P95, res.P99 = percentile(all, 50), percentile(all, 95), percentile(all, 99)
		res.MeanResolve = meanDuration(all)
		res.Ops = res.Resolves + res.Adds + res.Deletes + res.Throttled
		res.Server = scrapeServerStages(client, cfg.Base)
		results = append(results, res)
	}
	return results, nil
}

// payloads cycles record values and probes out of the synthetic workload's
// right table, so adds index realistic token distributions and probes do
// real candidate work.
type payloads struct {
	vals [][]string
	n    int
}

func newPayloads(w *learnrisk.Workload) *payloads {
	n := w.NumRightRecords()
	p := &payloads{vals: make([][]string, n), n: n}
	for i := 0; i < n; i++ {
		p.vals[i], _ = w.RightRecordAt(i)
	}
	return p
}

func (p *payloads) record(i int) []string { return p.vals[i%p.n] }
func (p *payloads) probe(i int) []string  { return p.vals[i%p.n] }

func postRecord(client *http.Client, base string, values []string) (uint64, int, error) {
	var resp server.RecordResponse
	status, err := doJSON(client, http.MethodPost, base+"/v1/records", server.RecordRequest{Values: values}, &resp)
	return resp.ID, status, err
}

func deleteRecord(client *http.Client, base string, id uint64) (int, error) {
	return doJSON(client, http.MethodDelete, fmt.Sprintf("%s/v1/records/%d", base, id), nil, nil)
}

func postResolve(client *http.Client, base string, probe []string, k int) (int, error) {
	return doJSON(client, http.MethodPost, base+"/v1/resolve", server.ResolveRequest{Values: probe, K: k}, nil)
}

// doJSON issues one request; out, when non-nil and the answer is 200, is
// decoded from the body. The body is always drained so connections reuse.
func doJSON(client *http.Client, method, url string, body, out any) (int, error) {
	var rd *bytes.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(buf)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	} else {
		var sink [512]byte
		for {
			if _, err := resp.Body.Read(sink[:]); err != nil {
				break
			}
		}
	}
	return resp.StatusCode, nil
}

// srvStages selects the server-side stage samples worth carrying into the
// bench JSON, mapping Prometheus sample keys (name plus rendered labels)
// to the metric names the section's Metrics map uses.
var srvStages = map[string]string{
	`stage_batch_wait_ns{quantile="0.99"}`:      "srv_batch_wait_p99_ns",
	`stage_scatter_ns{quantile="0.99"}`:         "srv_scatter_p99_ns",
	`stage_scatter_slowest_ns{quantile="0.99"}`: "srv_scatter_slowest_p99_ns",
	`stage_topk_merge_ns{quantile="0.99"}`:      "srv_topk_merge_p99_ns",
	`stage_probe_tokenize_ns{quantile="0.99"}`:  "srv_probe_tokenize_p99_ns",
	`request_resolve_ns{quantile="0.99"}`:       "srv_request_resolve_p99_ns",
	`request_resolve_ns{quantile="0.5"}`:        "srv_request_resolve_p50_ns",
}

// scrapeServerStages pulls GET /metrics after a step and picks the
// srvStages samples out of it. The histograms are cumulative over the
// whole run (quantiles cannot be windowed server-side), so each step's
// scrape reflects the load applied up to and including that step. A
// target without /metrics (an older server) just yields nil — the
// client-side percentiles stand alone.
func scrapeServerStages(client *http.Client, base string) map[string]float64 {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	samples, err := parsePromText(resp.Body)
	if err != nil {
		return nil
	}
	out := map[string]float64{}
	for key, name := range srvStages {
		if v, ok := samples[key]; ok {
			out[name] = v
		}
	}
	return out
}

// parsePromText reads Prometheus text exposition into a flat sample map
// keyed by the sample's name plus its label block verbatim — exactly the
// subset of the format the repo's own registry emits (no escaping inside
// label values, one sample per line).
func parsePromText(r io.Reader) (map[string]float64, error) {
	samples := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		samples[line[:sp]] = v
	}
	return samples, sc.Err()
}

func mergeLatencies(lats [][]time.Duration) []time.Duration {
	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return all
}

// percentile takes the nearest-rank percentile of an ascending-sorted
// sample; zero on an empty one.
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := (len(sorted)*p + 99) / 100 // ceil(n*p/100)
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

func meanDuration(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range ds {
		sum += d
	}
	return sum / time.Duration(len(ds))
}

// benchResult and benchSection mirror cmd/bench's JSON schema, so one
// BENCH file can carry go-test benchmarks and loadgen curves side by side
// and `cmd/bench -compare`-style tooling reads both.
type benchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type benchSection struct {
	Go         string                 `json:"go"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	BenchFlags string                 `json:"bench_flags"`
	Results    map[string]benchResult `json:"results"`
}

// sectionFor shapes the measured steps into one cmd/bench-schema section:
// each step becomes a result named loadgen/resolve/c=N whose ns_per_op is
// the mean resolve latency, with the percentiles and throughput riding as
// custom metrics.
func sectionFor(flags string, results []stepResult) benchSection {
	sec := benchSection{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		BenchFlags: flags,
		Results:    make(map[string]benchResult, len(results)),
	}
	for _, r := range results {
		sec.Results[fmt.Sprintf("loadgen/resolve/c=%d", r.Concurrency)] = benchResult{
			Iterations: r.Resolves,
			NsPerOp:    float64(r.MeanResolve.Nanoseconds()),
			Metrics: map[string]float64{
				"p50_ns":        float64(r.P50.Nanoseconds()),
				"p95_ns":        float64(r.P95.Nanoseconds()),
				"p99_ns":        float64(r.P99.Nanoseconds()),
				"ops_per_s":     r.OpsPerSec(),
				"resolve_per_s": r.ResolvesPerSec(),
				"throttled_429": float64(r.Throttled),
				"failed":        float64(r.Failed),
			},
		}
	}
	for _, r := range results {
		for k, v := range r.Server {
			sec.Results[fmt.Sprintf("loadgen/resolve/c=%d", r.Concurrency)].Metrics[k] = v
		}
	}
	return sec
}

// writeResults merges one label's section into the output file, preserving
// every other label — the same update-in-place contract as cmd/bench, so
// flat and partitioned runs accumulate into one comparable document.
func writeResults(path, label, flags string, results []stepResult) error {
	doc := map[string]json.RawMessage{}
	if existing, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(existing, &doc); err != nil {
			return fmt.Errorf("%s exists but is not JSON: %w", path, err)
		}
	}
	enc, err := json.MarshalIndent(sectionFor(flags, results), "", "  ")
	if err != nil {
		return err
	}
	doc[label] = enc
	final, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(final, '\n'), 0o644)
}
