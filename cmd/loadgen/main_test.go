package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/server"
)

func TestParseSteps(t *testing.T) {
	got, err := parseSteps(" 1, 2,8 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseSteps = %v", got)
	}
	for _, bad := range []string{"", "0", "-3", "a,b", "4,,8"} {
		if _, err := parseSteps(bad); err == nil {
			t.Errorf("parseSteps(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	sorted := []time.Duration{ms(1), ms(2), ms(3), ms(4), ms(5), ms(6), ms(7), ms(8), ms(9), ms(10)}
	for _, tc := range []struct {
		p    int
		want time.Duration
	}{
		{50, ms(5)}, {95, ms(10)}, {99, ms(10)}, {100, ms(10)}, {1, ms(1)},
	} {
		if got := percentile(sorted, tc.p); got != tc.want {
			t.Errorf("p%d = %s, want %s", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 99); got != 0 {
		t.Errorf("empty p99 = %s, want 0", got)
	}
	if got := meanDuration([]time.Duration{ms(2), ms(4)}); got != ms(3) {
		t.Errorf("mean = %s, want 3ms", got)
	}
}

// stubServer fakes the three endpoints loadgen drives, optionally
// refusing every throttleEvery'th mutation with 429.
func stubServer(t *testing.T, throttleEvery int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var nextID, muts atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/records", func(w http.ResponseWriter, r *http.Request) {
		if n := muts.Add(1); throttleEvery > 0 && n%throttleEvery == 0 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		json.NewEncoder(w).Encode(server.RecordResponse{ID: uint64(nextID.Add(1) - 1)})
	})
	mux.HandleFunc("DELETE /v1/records/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, _ := strconv.ParseUint(r.PathValue("id"), 10, 64)
		if id%3 == 0 {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(server.DeleteResponse{ID: id, Deleted: true})
	})
	var resolves atomic.Int64
	mux.HandleFunc("POST /v1/resolve", func(w http.ResponseWriter, r *http.Request) {
		resolves.Add(1)
		json.NewEncoder(w).Encode(server.ResolveResponse{})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &resolves
}

// TestRunLoadClosedLoop drives the full loop against a stub: every op kind
// occurs, latencies produce percentiles, throttles are counted apart from
// failures.
func TestRunLoadClosedLoop(t *testing.T) {
	ts, resolves := stubServer(t, 5)
	pay := &payloads{vals: [][]string{{"a", "b"}, {"c", "d"}, {"e", "f"}}, n: 3}
	results, err := runLoad(loadConfig{
		Base:    ts.URL,
		Pay:     pay,
		Steps:   []int{1, 3},
		StepDur: 150 * time.Millisecond,
		K:       3,
		AddFrac: 0.3,
		DelFrac: 0.2,
		Preload: 10,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d step results, want 2", len(results))
	}
	for _, r := range results {
		if r.Resolves == 0 || r.Adds == 0 || r.Deletes == 0 {
			t.Errorf("c=%d: op mix incomplete: %+v", r.Concurrency, r)
		}
		if r.Throttled == 0 {
			t.Errorf("c=%d: stub throttles every 5th mutation but Throttled = 0", r.Concurrency)
		}
		if r.Failed != 0 {
			t.Errorf("c=%d: Failed = %d (429 and delete-404 must not count)", r.Concurrency, r.Failed)
		}
		if r.P50 <= 0 || r.P99 < r.P95 || r.P95 < r.P50 {
			t.Errorf("c=%d: percentiles inconsistent: p50=%s p95=%s p99=%s", r.Concurrency, r.P50, r.P95, r.P99)
		}
		if r.Ops != r.Resolves+r.Adds+r.Deletes+r.Throttled {
			t.Errorf("c=%d: ops accounting off: %+v", r.Concurrency, r)
		}
		if r.OpsPerSec() <= 0 || r.ResolvesPerSec() <= 0 {
			t.Errorf("c=%d: zero throughput: %+v", r.Concurrency, r)
		}
	}
	if results[1].Concurrency != 3 {
		t.Errorf("second step concurrency = %d, want 3", results[1].Concurrency)
	}
	if resolves.Load() == 0 {
		t.Error("stub saw no resolves")
	}
}

// TestScrapeServerStages pins the /metrics round trip: Prometheus text
// parses into flat samples, the srvStages selection lands in the step's
// Server map, and targets without /metrics degrade to nil.
func TestScrapeServerStages(t *testing.T) {
	const body = `# TYPE stage_scatter_ns summary
stage_scatter_ns{quantile="0.5"} 100
stage_scatter_ns{quantile="0.99"} 4200
stage_scatter_ns_sum 9000
request_resolve_ns{quantile="0.99"} 8_bad_value
stage_batch_wait_ns{quantile="0.99"} 77

stage_topk_merge_ns{quantile="0.99"} 3.5e2
`
	samples, err := parsePromText(strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if got := samples[`stage_scatter_ns{quantile="0.99"}`]; got != 4200 {
		t.Errorf("scatter p99 = %v, want 4200", got)
	}
	if got := samples[`stage_topk_merge_ns{quantile="0.99"}`]; got != 350 {
		t.Errorf("scientific notation parsed as %v, want 350", got)
	}
	if _, ok := samples[`request_resolve_ns{quantile="0.99"}`]; ok {
		t.Error("unparseable value was kept")
	}

	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, body)
	}))
	defer ts.Close()
	got := scrapeServerStages(ts.Client(), ts.URL)
	if got["srv_scatter_p99_ns"] != 4200 || got["srv_batch_wait_p99_ns"] != 77 {
		t.Errorf("scrape selection = %v", got)
	}
	if _, ok := got["srv_scatter_slowest_p99_ns"]; ok {
		t.Error("absent sample materialized in selection")
	}

	bare := httptest.NewServer(http.NotFoundHandler())
	defer bare.Close()
	if got := scrapeServerStages(bare.Client(), bare.URL); got != nil {
		t.Errorf("target without /metrics: got %v, want nil", got)
	}
}

// TestWriteResultsMergesSections pins the update-in-place contract: a new
// label lands next to existing sections (cmd/bench or earlier loadgen
// runs) without clobbering them.
func TestWriteResultsMergesSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(`{"baseline": {"go": "go1.0", "gomaxprocs": 1, "bench_flags": "x", "results": {}}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	steps := []stepResult{{
		Concurrency: 4, Ops: 100, Resolves: 80, Adds: 15, Deletes: 5,
		Elapsed: time.Second, P50: time.Millisecond, P95: 2 * time.Millisecond,
		P99: 3 * time.Millisecond, MeanResolve: time.Millisecond,
	}}
	if err := writeResults(path, "parts-4", "flags", steps); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]benchSection
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if _, ok := doc["baseline"]; !ok {
		t.Error("merging dropped the existing baseline section")
	}
	sec, ok := doc["parts-4"]
	if !ok {
		t.Fatal("new section missing")
	}
	r, ok := sec.Results["loadgen/resolve/c=4"]
	if !ok {
		t.Fatalf("results = %v", sec.Results)
	}
	if r.Iterations != 80 || r.NsPerOp != float64(time.Millisecond.Nanoseconds()) {
		t.Errorf("result = %+v", r)
	}
	if r.Metrics["p99_ns"] != float64(3*time.Millisecond.Nanoseconds()) {
		t.Errorf("p99_ns = %v", r.Metrics["p99_ns"])
	}
	if r.Metrics["ops_per_s"] != 100 {
		t.Errorf("ops_per_s = %v", r.Metrics["ops_per_s"])
	}
	// Writing the same label again replaces, not duplicates.
	if err := writeResults(path, "parts-4", "flags2", steps); err != nil {
		t.Fatal(err)
	}
	raw, _ = os.ReadFile(path)
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["parts-4"].BenchFlags != "flags2" {
		t.Errorf("rewrite kept old flags %q", doc["parts-4"].BenchFlags)
	}
	if len(doc) != 2 {
		t.Errorf("doc has %d sections, want 2", len(doc))
	}
}
