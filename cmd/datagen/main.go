// Command datagen emits the synthetic benchmark-shaped workloads as CSV
// files (left table, right table, labeled pairs) so they can be inspected
// or fed back through cmd/learnrisk's CSV path.
//
//	datagen -profile AB -scale 0.1 -out ./data
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/dataset"
)

func main() {
	var (
		profile = flag.String("profile", "DS", "profile: DS|AB|AG|SG|DA or 'all'")
		scale   = flag.Float64("scale", 0.1, "scale relative to paper Table 2 sizes")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()

	names := []string{*profile}
	if *profile == "all" {
		names = datagen.Names()
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	for _, name := range names {
		spec, ok := datagen.ByName(name, *seed)
		if !ok {
			fatal(fmt.Errorf("unknown profile %q", name))
		}
		w, err := datagen.Generate(spec, *scale)
		if err != nil {
			fatal(err)
		}
		if err := dataset.SaveWorkload(*out, w); err != nil {
			fatal(err)
		}
		st := w.Stats()
		fmt.Printf("%s: wrote %s/%s_{left,right,pairs}.csv (%d pairs, %d matches, %d attrs)\n",
			name, *out, name, st.Size, st.Matches, st.Attributes)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
