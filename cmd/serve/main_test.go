package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fakeAdder records the values it accepts and can be armed to fail from a
// given record on.
type fakeAdder struct {
	added  [][]string
	failAt int // -1 = never fail
}

func (a *fakeAdder) AddRecord(values []string) (uint64, error) {
	if a.failAt >= 0 && len(a.added) == a.failAt {
		return 0, errors.New("store full")
	}
	a.added = append(a.added, append([]string(nil), values...))
	return uint64(len(a.added)), nil
}

func writeRecordsCSV(t *testing.T, n int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "records.csv")
	content := "id,entity_id,title,year\n"
	for i := 0; i < n; i++ {
		content += fmt.Sprintf("r%d,e%d,title %d,%d\n", i, i, i, 1990+i)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWarmLoadRecords(t *testing.T) {
	path := writeRecordsCSV(t, 10)
	dst := &fakeAdder{failAt: -1}
	n, err := warmLoadRecords(context.Background(), dst, 2, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || len(dst.added) != 10 {
		t.Fatalf("loaded %d records, store saw %d, want 10", n, len(dst.added))
	}
	if dst.added[3][0] != "title 3" || dst.added[3][1] != "1993" {
		t.Errorf("record 3 values = %v", dst.added[3])
	}
}

// TestWarmLoadRecordsPartialFailure: a mid-file store failure reports the
// count actually applied, and the error names the failing record.
func TestWarmLoadRecordsPartialFailure(t *testing.T) {
	path := writeRecordsCSV(t, 10)
	dst := &fakeAdder{failAt: 4}
	n, err := warmLoadRecords(context.Background(), dst, 2, path)
	if err == nil {
		t.Fatal("expected a mid-file failure")
	}
	if n != 4 || len(dst.added) != 4 {
		t.Fatalf("reported %d loaded, store holds %d, want 4", n, len(dst.added))
	}
	if want := `record 4 (id "r4")`; !strings.Contains(err.Error(), want) {
		t.Errorf("error %q should name %s", err, want)
	}
}

// TestWarmLoadRecordsCancellation: a canceled context stops the row loop
// promptly and surfaces context.Canceled with the partial count.
func TestWarmLoadRecordsCancellation(t *testing.T) {
	path := writeRecordsCSV(t, 50)
	ctx, cancel := context.WithCancel(context.Background())
	dst := &fakeAdder{failAt: -1}
	cancel()
	n, err := warmLoadRecords(ctx, dst, 2, path)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n != 0 || len(dst.added) != 0 {
		t.Fatalf("canceled-before-start load applied %d records", n)
	}

	// Cancel partway: the adder trips the cancel after a few records.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	tripping := &cancelingAdder{inner: &fakeAdder{failAt: -1}, cancel: cancel2, after: 7}
	n, err = warmLoadRecords(ctx2, tripping, 2, path)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-file cancel: err = %v, want context.Canceled", err)
	}
	if n != 7 {
		t.Fatalf("mid-file cancel applied %d records, want 7", n)
	}
}

func TestWarmLoadRecordsFileErrors(t *testing.T) {
	if _, err := warmLoadRecords(context.Background(), &fakeAdder{failAt: -1}, 2, filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.csv")
	if err := os.WriteFile(bad, []byte("id,entity_id,a\nr1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := warmLoadRecords(context.Background(), &fakeAdder{failAt: -1}, 1, bad)
	if err == nil || n != 0 {
		t.Errorf("malformed row: n=%d err=%v", n, err)
	}
}

// cancelingAdder cancels the context after accepting a fixed number of
// records, simulating SIGINT mid-load.
type cancelingAdder struct {
	inner  *fakeAdder
	cancel context.CancelFunc
	after  int
}

func (a *cancelingAdder) AddRecord(values []string) (uint64, error) {
	id, err := a.inner.AddRecord(values)
	if len(a.inner.added) == a.after {
		a.cancel()
	}
	return id, err
}
