// Command serve runs the risk-scoring HTTP service: a trained
// learnrisk.Model behind a dynamic micro-batcher with atomic hot-swap.
//
// Load a saved artifact (the production shape — train once with
// cmd/learnrisk -save, serve anywhere):
//
//	serve -model model.json -addr :8080
//
// Or train a model at startup on a synthetic workload (handy for demos and
// smoke tests; the artifact can then be hot-swapped later):
//
//	serve -profile AB -scale 0.05 -seed 9 -addr :8080
//
// Endpoints (JSON):
//
//	POST   /v1/score         {"left": [...], "right": [...]}
//	POST   /v1/score/batch   {"pairs": [{"left": [...], "right": [...]}, ...]}
//	POST   /v1/explain       {"left": [...], "right": [...]}
//	POST   /v1/records       {"values": [...]}
//	DELETE /v1/records/{id}
//	POST   /v1/resolve       {"values": [...], "k": 5}
//	POST   /v1/snapshot      cut a durable-store snapshot now (-data-dir only)
//	GET    /v1/model
//	POST   /v1/model/reload  {"path": "new.json", "force": false}
//	GET    /healthz          liveness
//	GET    /readyz           readiness (503 until the model is loaded and
//	                         the -records warm-load has finished)
//
// -records seeds the online match store from a CSV in the repository's
// table layout (header row, then id,entity_id,<values...> — what
// cmd/datagen and dataset.WriteTableCSV emit). The load runs in the
// background: the listener accepts traffic immediately, /readyz flips to
// 200 when the index is warm.
//
// -data-dir makes the match store durable: every accepted record mutation
// is framed into a write-ahead log (fsynced per the -fsync policy) before
// it is applied, periodic snapshots (-snapshot-every) bound replay time,
// and a restart replays snapshot + log tail to serve the same records with
// no -records re-ingest. The replay runs in the background; /readyz
// reports its progress as the not-ready reason and record mutations answer
// 503 until it finishes. POST /v1/snapshot cuts a snapshot on demand.
// With a populated -data-dir, -records is skipped (the store already has
// its records); it seeds only an empty data dir.
//
// -partitions N shards the match store across N independent partitions:
// records consistent-hash by ID, every resolve scatter-gathers across all
// partitions concurrently and merges their top-k heaps into the same
// ranked answer one flat store would return. -replicas R fans each
// partition's reads across R replicas (power-of-two-choices). With
// -data-dir, each partition persists into its own part-NNN subdirectory,
// partitions replay concurrently at startup (restart time is the slowest
// partition, not the sum), and /readyz lists per-partition replay
// progress. -max-pending bounds in-flight record mutations; past the
// bound, ingest answers 429 + Retry-After instead of queueing without
// bound (back-pressure sheds writes, never resolves).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight requests
// finish (bounded by -shutdown-timeout), then the micro-batcher stops, and
// a durable store is closed last — its tail is rolled into a final
// snapshot, so a clean restart replays zero log frames.
//
// -pprof localhost:6060 starts a second, debug-only listener exposing
// /debug/pprof (CPU/heap/goroutine profiles) and /debug/vars (expvar
// counters: batcher flushes, batched pairs, mean/max flush size, queue
// depth, served pairs, model swaps, the match store's records, tombstones,
// compactions, resolves and mean candidates per probe, and — with
// -data-dir — wal_stats/snapshot_stats durability counters). Keep
// it bound to localhost — it is intentionally separate from the
// client-facing listener.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (the -pprof listener)
	"os"
	"os/signal"
	"syscall"
	"time"

	learnrisk "repro"
	"repro/internal/dataset"
	"repro/internal/match"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		modelPath   = flag.String("model", "", "saved model artifact to serve (also the default for /v1/model/reload)")
		profile     = flag.String("profile", "AB", "synthetic profile to train on when -model is empty: DS|AB|AG|SG|DA")
		scale       = flag.Float64("scale", 0.05, "synthetic dataset scale for startup training")
		seed        = flag.Uint64("seed", 1, "seed for startup training")
		maxBatch    = flag.Int("max-batch", 64, "micro-batcher flush size (1 disables coalescing)")
		maxLinger   = flag.Duration("max-linger", 2*time.Millisecond, "micro-batcher linger before an under-full batch flushes (0 = greedy)")
		recordsPath = flag.String("records", "", "CSV table (id,entity_id,<values...> with header) to warm-load into the match store; /readyz is 503 until done")
		dataDir     = flag.String("data-dir", "", "directory for the durable match store (WAL + snapshots); empty keeps the store in-memory only")
		fsyncFlag   = flag.String("fsync", "always", "WAL fsync policy: always (durable before ack), never, or an interval like 100ms")
		snapEvery   = flag.Int("snapshot-every", 10000, "logged operations between automatic snapshots (negative disables; snapshots then happen only via POST /v1/snapshot and shutdown)")
		minShared   = flag.Int("match-min-shared", 0, "blocking tokens a stored record must share with a probe (0 = default 1)")
		maxBlock    = flag.Int("match-max-block", 0, "stop-token pruning bound for the match index (0 = default 200, negative disables)")
		partitions  = flag.Int("partitions", 0, "partition the match store across this many independent partitions (scatter-gather resolve; 0 keeps one flat store)")
		replicas    = flag.Int("replicas", 1, "read replicas per partition (power-of-two-choices fan-out; needs -partitions)")
		maxPending  = flag.Int("max-pending", 0, "bounded ingest queue: record mutations beyond this many in flight answer 429 (0 = default 256 with -partitions, off without; negative disables)")
		pprofAddr   = flag.String("pprof", "", "optional debug listener address (e.g. localhost:6060) exposing /debug/pprof and /debug/vars; empty disables it")
		readTimeout = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		idleTO      = flag.Duration("idle-timeout", 60*time.Second, "HTTP idle timeout")
		shutdownTO  = flag.Duration("shutdown-timeout", 15*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	model, err := obtainModel(*modelPath, *profile, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving model %.12s (%d risk features, envelope v%d)",
		model.Fingerprint(), model.NumFeatures(), model.EnvelopeVersion())

	srv := server.New(model, server.Config{
		MaxBatch:  *maxBatch,
		MaxLinger: *maxLinger,
		ModelPath: *modelPath,
		Match: match.Config{
			MinSharedTokens: *minShared,
			MaxBlockSize:    *maxBlock,
		},
		Partitions: *partitions,
		Replicas:   *replicas,
		MaxPending: *maxPending,
	})
	defer srv.Close()

	// The signal context exists before the warm-up goroutines start so a
	// SIGINT during a large -records load stops the row loop promptly
	// instead of waiting for the whole file.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Store warm-up runs in the background so the listener binds
	// immediately; /readyz holds 503 until the store is populated (or
	// reports why the warm-up failed — a replica with a half-empty index
	// must not take traffic silently). With -data-dir the warm-up is the
	// durable replay (snapshot + WAL tail), optionally followed by a
	// -records seed when the replayed store came up empty.
	switch {
	case *dataDir != "" && *partitions > 0:
		policy, interval, err := wal.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetDurablePending()
		srv.SetNotReady(fmt.Sprintf("opening %d durable match partitions in %s", *partitions, *dataDir))
		go openPartitionedStore(ctx, srv, model, *dataDir, *recordsPath, *partitions, *replicas, match.Config{
			MinSharedTokens: *minShared,
			MaxBlockSize:    *maxBlock,
		}, match.DurableOptions{
			Sync:          policy,
			SyncInterval:  interval,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
		})
	case *dataDir != "":
		policy, interval, err := wal.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetDurablePending()
		srv.SetNotReady(fmt.Sprintf("opening durable match store in %s", *dataDir))
		go openDurableStore(ctx, srv, model, *dataDir, *recordsPath, match.DurableOptions{
			Sync:          policy,
			SyncInterval:  interval,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
		})
	case *recordsPath != "":
		srv.SetNotReady(fmt.Sprintf("warm-loading match records from %s", *recordsPath))
		go func() {
			n, err := warmLoadRecords(ctx, srv, srv.MatchStore().Arity(), *recordsPath)
			if err != nil {
				log.Printf("warm-load: %v (after %d records)", err, n)
				srv.SetNotReady(fmt.Sprintf("warm-load of %s failed: %v", *recordsPath, err))
				return
			}
			log.Printf("warm-loaded %d records into the match store", n)
			srv.SetReady()
		}()
	}

	publishDebugVars(srv)
	if *pprofAddr != "" {
		// The debug listener is separate from the serving listener on
		// purpose: profiling and introspection endpoints never share a
		// port (or timeouts) with client traffic. DefaultServeMux carries
		// /debug/pprof (net/http/pprof import) and /debug/vars (expvar).
		go func() {
			log.Printf("debug listener on %s (/debug/pprof, /debug/vars)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTO,
		IdleTimeout:  *idleTO,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (max-batch=%d max-linger=%s)", *addr, *maxBatch, *maxLinger)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight requests (up to %s)", *shutdownTO)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	// Ordering matters: the HTTP drain above means no request is mid-mutation,
	// the batcher drain answers everything already accepted, and only then is
	// the durable store sealed — its unsnapshotted tail rolls into a final
	// snapshot so the next start replays zero log frames.
	srv.Close()
	if d := srv.Durable(); d != nil {
		log.Printf("sealing durable store in %s (final snapshot)", d.Dir())
		if err := d.Close(); err != nil {
			log.Printf("durable store close: %v", err)
		}
	}
	if ps := srv.Partitioned(); ps != nil && ps.Durable() {
		log.Printf("sealing %d durable match partitions (final snapshots)", ps.Partitions())
		if err := ps.Close(); err != nil {
			log.Printf("partitioned store close: %v", err)
		}
	}
	log.Printf("served %d pairs across %d hot-swaps; bye", srv.Served(), srv.Swaps())
}

// openDurableStore replays the data dir in the background (the listener is
// already up; /readyz carries the replay progress), installs the store,
// and seeds it from recordsPath only when the replay produced an empty
// store — a populated data dir already holds its records.
func openDurableStore(ctx context.Context, srv *server.Server, model *learnrisk.Model, dir, recordsPath string, opts match.DurableOptions) {
	opts.Progress = func(phase string, done, total int) {
		if total > 0 {
			srv.SetNotReady(fmt.Sprintf("replaying durable store: %s %d/%d", phase, done, total))
		} else {
			srv.SetNotReady(fmt.Sprintf("replaying durable store: %s %d ops", phase, done))
		}
	}
	d, err := model.OpenDurableMatchStore(dir, srv.MatchStore().Config(), opts)
	if err != nil {
		// The replica must not take traffic with its records missing, and
		// mutations stay refused (the pending gate holds): an operator
		// decision is needed, not a silently empty store.
		log.Printf("durable store: %v", err)
		srv.SetNotReady(fmt.Sprintf("durable store open failed: %v", err))
		return
	}
	rs := d.ReplayStats()
	log.Printf("durable store %s: %d records from snapshot %d + %d tail ops (%d segments, torn=%v) in %s",
		dir, rs.SnapshotRecords, rs.SnapshotSeq, rs.TailFrames, rs.Segments, rs.TornTail, rs.Duration)
	if err := srv.InstallDurableStore(d); err != nil {
		log.Printf("durable store: %v", err)
		srv.SetNotReady(fmt.Sprintf("durable store install failed: %v", err))
		return
	}
	if recordsPath != "" {
		if d.Len() > 0 {
			log.Printf("skipping -records %s: the durable store already holds %d records", recordsPath, d.Len())
		} else {
			srv.SetNotReady(fmt.Sprintf("seeding durable store from %s", recordsPath))
			n, err := warmLoadRecords(ctx, srv, srv.MatchStore().Arity(), recordsPath)
			if err != nil {
				log.Printf("warm-load: %v (after %d records)", err, n)
				srv.SetNotReady(fmt.Sprintf("warm-load of %s failed: %v", recordsPath, err))
				return
			}
			log.Printf("seeded %d records into the durable store", n)
		}
	}
	srv.SetReady()
}

// openPartitionedStore replays every partition's data subdirectory
// concurrently in the background (the listener is already up; /readyz
// aggregates per-partition replay progress), installs the partitioned
// store, and seeds it from recordsPath only when the replay produced an
// empty store.
func openPartitionedStore(ctx context.Context, srv *server.Server, model *learnrisk.Model, dir, recordsPath string, partitions, replicas int, cfg match.Config, opts match.DurableOptions) {
	for i := 0; i < partitions; i++ {
		srv.SetPartitionNotReady(i, "opening")
	}
	progress := func(part int, phase string, done, total int) {
		if total > 0 {
			srv.SetPartitionNotReady(part, fmt.Sprintf("replaying: %s %d/%d", phase, done, total))
		} else {
			srv.SetPartitionNotReady(part, fmt.Sprintf("replaying: %s %d ops", phase, done))
		}
	}
	ps, err := model.OpenDurablePartitionedMatchStore(dir, partitions, replicas, cfg, opts, progress)
	if err != nil {
		// Same stance as the flat durable path: no silently empty replica.
		log.Printf("partitioned store: %v", err)
		srv.SetNotReady(fmt.Sprintf("partitioned store open failed: %v", err))
		return
	}
	log.Printf("partitioned store %s: %d partitions, %d live records", dir, ps.Partitions(), ps.Len())
	if err := srv.InstallPartitionedStore(ps); err != nil {
		log.Printf("partitioned store: %v", err)
		srv.SetNotReady(fmt.Sprintf("partitioned store install failed: %v", err))
		return
	}
	for i := 0; i < partitions; i++ {
		srv.SetPartitionReady(i)
	}
	if recordsPath != "" {
		if ps.Len() > 0 {
			log.Printf("skipping -records %s: the partitioned store already holds %d records", recordsPath, ps.Len())
		} else {
			srv.SetNotReady(fmt.Sprintf("seeding partitioned store from %s", recordsPath))
			n, err := warmLoadRecords(ctx, srv, ps.Arity(), recordsPath)
			if err != nil {
				log.Printf("warm-load: %v (after %d records)", err, n)
				srv.SetNotReady(fmt.Sprintf("warm-load of %s failed: %v", recordsPath, err))
				return
			}
			log.Printf("seeded %d records into the partitioned store", n)
		}
	}
	srv.SetReady()
}

// publishDebugVars exports the micro-batcher's coalescing counters and the
// serving totals as expvars (GET /debug/vars on the -pprof listener):
// flush count, pairs ridden through flushes, mean/max flush size, current
// queue depth, pairs served and model hot-swaps.
func publishDebugVars(srv *server.Server) {
	expvar.Publish("batcher_flushes", expvar.Func(func() any {
		flushes, _ := srv.BatchStats()
		return flushes
	}))
	expvar.Publish("batcher_batched_pairs", expvar.Func(func() any {
		_, pairs := srv.BatchStats()
		return pairs
	}))
	expvar.Publish("batcher_mean_flush", expvar.Func(func() any {
		flushes, pairs := srv.BatchStats()
		if flushes == 0 {
			return 0.0
		}
		return float64(pairs) / float64(flushes)
	}))
	expvar.Publish("batcher_max_flush", expvar.Func(func() any { return srv.MaxFlush() }))
	expvar.Publish("batcher_queue_depth", expvar.Func(func() any { return srv.QueueDepth() }))
	expvar.Publish("served_pairs", expvar.Func(func() any { return srv.Served() }))
	expvar.Publish("model_swaps", expvar.Func(func() any { return srv.Swaps() }))

	// Match-store counters as one expvar: a single Stats() sweep per
	// scrape (Stats briefly takes every shard lock, so one consistent
	// snapshot beats five contending ones), re-read from the current store
	// so the counters follow a forced schema-changing swap.
	expvar.Publish("match_store", expvar.Func(func() any {
		st := srv.MatchStore().Stats()
		mean := 0.0
		if st.Probes > 0 {
			mean = float64(st.Candidates) / float64(st.Probes)
		}
		return map[string]any{
			"records_live":              st.Live,
			"records_indexed":           st.Added,
			"records_deleted":           st.Deleted,
			"tokens":                    st.Tokens,
			"tombstones":                st.Tombstones,
			"compactions":               st.Compactions,
			"probes":                    st.Probes,
			"resolves":                  srv.Resolves(),
			"mean_candidates_per_probe": mean,
		}
	}))

	// Per-shard index counters (skew at a glance): the flat store's shards,
	// or every partition's shards on a partitioned server.
	expvar.Publish("match_shard_stats", expvar.Func(func() any {
		if ps := srv.Partitioned(); ps != nil {
			return map[string]any{"partitioned": true, "partitions": ps.PartitionShardStats()}
		}
		return map[string]any{"partitioned": false, "shards": srv.MatchStore().ShardStats()}
	}))

	// Scatter-gather router counters. Published even on a flat server (as
	// {"enabled": false}) so dashboards can tell "not partitioned" from
	// "metric missing".
	expvar.Publish("partition_stats", expvar.Func(func() any {
		ps := srv.Partitioned()
		if ps == nil {
			return map[string]any{"enabled": false}
		}
		st := ps.Stats()
		return map[string]any{
			"enabled":       true,
			"partitions":    st.Partitions,
			"replicas":      st.Replicas,
			"records":       st.Records,
			"pending":       st.Pending,
			"probes":        st.Probes,
			"pruned_tokens": st.PrunedTokens,
			"census_tokens": st.CensusTokens,
			"durable":       ps.Durable(),
			"next_id":       ps.NextID(),
		}
	}))

	// Durability counters, one consistent DurableStats sweep per scrape.
	// Published even on an in-memory server (as {"enabled": false}) so
	// dashboards can tell "no durability" from "metric missing".
	expvar.Publish("wal_stats", expvar.Func(func() any {
		d := srv.Durable()
		if d == nil {
			return map[string]any{"enabled": false}
		}
		st := d.DurableStats()
		return map[string]any{
			"enabled":       true,
			"dir":           st.Dir,
			"segment_seq":   st.WALSeq,
			"segment_bytes": st.WALSegmentBytes,
			"appends":       st.WALAppends,
			"bytes":         st.WALBytes,
			"syncs":         st.WALSyncs,
			"tail_ops":      st.TailOps,
		}
	}))
	expvar.Publish("snapshot_stats", expvar.Func(func() any {
		d := srv.Durable()
		if d == nil {
			return map[string]any{"enabled": false}
		}
		st := d.DurableStats()
		return map[string]any{
			"enabled":             true,
			"snapshots":           st.Snapshots,
			"last_seq":            st.SnapshotSeq,
			"last_records":        st.SnapshotRecords,
			"last_bytes":          st.SnapshotBytes,
			"last_millis":         st.SnapshotMillis,
			"replay_tail_frames":  st.Replay.TailFrames,
			"replay_snapshot_rec": st.Replay.SnapshotRecords,
			"replay_torn_tail":    st.Replay.TornTail,
			"replay_millis":       st.Replay.Duration.Milliseconds(),
		}
	}))
}

// recordAdder is the slice of the server the warm-load needs: accept one
// record's values. Narrowing the dependency keeps the load path testable
// without a listener.
type recordAdder interface {
	AddRecord(values []string) (uint64, error)
}

// warmLoadRecords streams a CSV table (the repository layout dataset.
// ScanTableCSV reads: header row, then id,entity_id,<values...>) into the
// match store one row at a time — the file is never materialized as a
// table, so a multi-gigabyte warm-load holds one record in memory. Only
// the schema arity matters for parsing — attribute types drive metric
// selection at training time, not CSV layout — so the schema handed to the
// scanner carries zero-valued types.
//
// The context is checked per record: cancellation (SIGINT mid-load) stops
// promptly with ctx.Err(). On any failure the returned count is the number
// of records actually applied to the store — the accounting an operator
// needs to judge a partially warmed replica.
func warmLoadRecords(ctx context.Context, dst recordAdder, arity int, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	schema := &dataset.Schema{Attrs: make([]dataset.Attr, arity)}
	loaded := 0
	err = dataset.ScanTableCSV(f, path, schema, func(r dataset.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := dst.AddRecord(r.Values); err != nil {
			return fmt.Errorf("%s record %d (id %q): %w", path, loaded, r.ID, err)
		}
		loaded++
		return nil
	})
	return loaded, err
}

// obtainModel loads the artifact at path, or trains a fresh model on a
// synthetic workload when no path is given.
func obtainModel(path, profile string, scale float64, seed uint64) (*learnrisk.Model, error) {
	if path != "" {
		m, err := learnrisk.LoadFile(path)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded artifact %s", path)
		return m, nil
	}
	log.Printf("no -model artifact: training on synthetic %s at scale %g (seed %d)", profile, scale, seed)
	w, err := learnrisk.Generate(profile, scale, seed)
	if err != nil {
		return nil, err
	}
	m, err := learnrisk.Train(context.Background(), w, learnrisk.Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("startup training: %w", err)
	}
	return m, nil
}
