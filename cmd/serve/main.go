// Command serve runs the risk-scoring HTTP service: a trained
// learnrisk.Model behind a dynamic micro-batcher with atomic hot-swap.
//
// Load a saved artifact (the production shape — train once with
// cmd/learnrisk -save, serve anywhere):
//
//	serve -model model.json -addr :8080
//
// Or train a model at startup on a synthetic workload (handy for demos and
// smoke tests; the artifact can then be hot-swapped later):
//
//	serve -profile AB -scale 0.05 -seed 9 -addr :8080
//
// Endpoints (JSON):
//
//	POST   /v1/score         {"left": [...], "right": [...]}
//	POST   /v1/score/batch   {"pairs": [{"left": [...], "right": [...]}, ...]}
//	POST   /v1/explain       {"left": [...], "right": [...]}
//	POST   /v1/records       {"values": [...]}
//	DELETE /v1/records/{id}
//	POST   /v1/resolve       {"values": [...], "k": 5}
//	POST   /v1/snapshot      cut a durable-store snapshot now (-data-dir only)
//	GET    /v1/model
//	POST   /v1/model/reload  {"path": "new.json", "force": false}
//	GET    /metrics          Prometheus text exposition (all serving metrics)
//	GET    /healthz          liveness
//	GET    /readyz           readiness (503 until the model is loaded and
//	                         the -records warm-load has finished)
//
// -records seeds the online match store from a CSV in the repository's
// table layout (header row, then id,entity_id,<values...> — what
// cmd/datagen and dataset.WriteTableCSV emit). The load runs in the
// background: the listener accepts traffic immediately, /readyz flips to
// 200 when the index is warm.
//
// -data-dir makes the match store durable: every accepted record mutation
// is framed into a write-ahead log (fsynced per the -fsync policy) before
// it is applied, periodic snapshots (-snapshot-every) bound replay time,
// and a restart replays snapshot + log tail to serve the same records with
// no -records re-ingest. The replay runs in the background; /readyz
// reports its progress as the not-ready reason and record mutations answer
// 503 until it finishes. POST /v1/snapshot cuts a snapshot on demand.
// With a populated -data-dir, -records is skipped (the store already has
// its records); it seeds only an empty data dir.
//
// -partitions N shards the match store across N independent partitions:
// records consistent-hash by ID, every resolve scatter-gathers across all
// partitions concurrently and merges their top-k heaps into the same
// ranked answer one flat store would return. -replicas R fans each
// partition's reads across R replicas (power-of-two-choices). With
// -data-dir, each partition persists into its own part-NNN subdirectory,
// partitions replay concurrently at startup (restart time is the slowest
// partition, not the sum), and /readyz lists per-partition replay
// progress. -max-pending bounds in-flight record mutations; past the
// bound, ingest answers 429 + Retry-After instead of queueing without
// bound (back-pressure sheds writes, never resolves).
//
// SIGINT/SIGTERM drain gracefully: the listener closes, in-flight requests
// finish (bounded by -shutdown-timeout), then the micro-batcher stops, and
// a durable store is closed last — its tail is rolled into a final
// snapshot, so a clean restart replays zero log frames.
//
// -pprof localhost:6060 starts a second, debug-only listener exposing
// /debug/pprof (CPU/heap/goroutine profiles) and /debug/vars (expvar
// counters: batcher flushes, batched pairs, mean/max flush size, queue
// depth, served pairs, model swaps, the match store's records, tombstones,
// compactions, resolves and mean candidates per probe, and — with
// -data-dir — wal_stats/snapshot_stats durability counters). Keep
// it bound to localhost — it is intentionally separate from the
// client-facing listener. -mutex-profile-fraction and
// -block-profile-rate turn on the runtime's contention profiles
// (mutex/block under /debug/pprof), which are silently empty without them.
//
// All of those counters — plus per-stage latency histograms (batcher
// wait, scatter per partition, WAL append/fsync, snapshot cut/publish),
// request-level p50/p95/p99 and a runtime sampler — also render as
// Prometheus text exposition on the serving listener's GET /metrics.
// -slow-request 50ms logs a structured line (request id + per-stage
// breakdown) for every request slower than that; -log-format json makes
// the log machine-parseable.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux (the -pprof listener)
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	learnrisk "repro"
	"repro/internal/dataset"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/wal"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		modelPath   = flag.String("model", "", "saved model artifact to serve (also the default for /v1/model/reload)")
		profile     = flag.String("profile", "AB", "synthetic profile to train on when -model is empty: DS|AB|AG|SG|DA")
		scale       = flag.Float64("scale", 0.05, "synthetic dataset scale for startup training")
		seed        = flag.Uint64("seed", 1, "seed for startup training")
		maxBatch    = flag.Int("max-batch", 64, "micro-batcher flush size (1 disables coalescing)")
		maxLinger   = flag.Duration("max-linger", 2*time.Millisecond, "micro-batcher linger before an under-full batch flushes (0 = greedy)")
		recordsPath = flag.String("records", "", "CSV table (id,entity_id,<values...> with header) to warm-load into the match store; /readyz is 503 until done")
		dataDir     = flag.String("data-dir", "", "directory for the durable match store (WAL + snapshots); empty keeps the store in-memory only")
		fsyncFlag   = flag.String("fsync", "always", "WAL fsync policy: always (durable before ack), never, or an interval like 100ms")
		snapEvery   = flag.Int("snapshot-every", 10000, "logged operations between automatic snapshots (negative disables; snapshots then happen only via POST /v1/snapshot and shutdown)")
		minShared   = flag.Int("match-min-shared", 0, "blocking tokens a stored record must share with a probe (0 = default 1)")
		maxBlock    = flag.Int("match-max-block", 0, "stop-token pruning bound for the match index (0 = default 200, negative disables)")
		partitions  = flag.Int("partitions", 0, "partition the match store across this many independent partitions (scatter-gather resolve; 0 keeps one flat store)")
		replicas    = flag.Int("replicas", 1, "read replicas per partition (power-of-two-choices fan-out; needs -partitions)")
		maxPending  = flag.Int("max-pending", 0, "bounded ingest queue: record mutations beyond this many in flight answer 429 (0 = default 256 with -partitions, off without; negative disables)")
		pprofAddr   = flag.String("pprof", "", "optional debug listener address (e.g. localhost:6060) exposing /debug/pprof and /debug/vars; empty disables it")
		mutexFrac   = flag.Int("mutex-profile-fraction", 5, "with -pprof, sample 1/N of mutex-contention events into /debug/pprof/mutex (0 disables)")
		blockRate   = flag.Int("block-profile-rate", 0, "with -pprof, sample blocking events of at least this many ns into /debug/pprof/block (0 disables; sampling has measurable overhead)")
		slowReq     = flag.Duration("slow-request", 0, "log a structured per-stage breakdown for every request slower than this (0 disables)")
		logFormat   = flag.String("log-format", "text", "structured log output: text or json (json makes slow-request lines machine-parseable)")
		readTimeout = flag.Duration("read-timeout", 10*time.Second, "HTTP read timeout")
		writeTO     = flag.Duration("write-timeout", 30*time.Second, "HTTP write timeout")
		idleTO      = flag.Duration("idle-timeout", 60*time.Second, "HTTP idle timeout")
		shutdownTO  = flag.Duration("shutdown-timeout", 15*time.Second, "grace period for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()

	logger, err := buildLogger(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	slog.SetDefault(logger)

	model, err := obtainModel(*modelPath, *profile, *scale, *seed)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving model %.12s (%d risk features, envelope v%d)",
		model.Fingerprint(), model.NumFeatures(), model.EnvelopeVersion())

	reg := obs.NewRegistry()
	obs.RegisterRuntime(reg)
	srv := server.New(model, server.Config{
		MaxBatch:  *maxBatch,
		MaxLinger: *maxLinger,
		ModelPath: *modelPath,
		Match: match.Config{
			MinSharedTokens: *minShared,
			MaxBlockSize:    *maxBlock,
		},
		Partitions:  *partitions,
		Replicas:    *replicas,
		MaxPending:  *maxPending,
		Obs:         reg,
		SlowRequest: *slowReq,
		Logger:      logger,
	})
	defer srv.Close()
	// Mirror every registry metric onto expvar so the -pprof listener's
	// /debug/vars keeps its pre-registry surface: same names, same tree
	// shapes, now sourced from the same registry /metrics scrapes.
	reg.MirrorExpvar()

	// The signal context exists before the warm-up goroutines start so a
	// SIGINT during a large -records load stops the row loop promptly
	// instead of waiting for the whole file.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Store warm-up runs in the background so the listener binds
	// immediately; /readyz holds 503 until the store is populated (or
	// reports why the warm-up failed — a replica with a half-empty index
	// must not take traffic silently). With -data-dir the warm-up is the
	// durable replay (snapshot + WAL tail), optionally followed by a
	// -records seed when the replayed store came up empty.
	switch {
	case *dataDir != "" && *partitions > 0:
		policy, interval, err := wal.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetDurablePending()
		srv.SetNotReady(fmt.Sprintf("opening %d durable match partitions in %s", *partitions, *dataDir))
		go openPartitionedStore(ctx, srv, model, *dataDir, *recordsPath, *partitions, *replicas, match.Config{
			MinSharedTokens: *minShared,
			MaxBlockSize:    *maxBlock,
		}, match.DurableOptions{
			Sync:          policy,
			SyncInterval:  interval,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
			OnStage:       srv.ObserveStage,
		})
	case *dataDir != "":
		policy, interval, err := wal.ParseSyncPolicy(*fsyncFlag)
		if err != nil {
			log.Fatal(err)
		}
		srv.SetDurablePending()
		srv.SetNotReady(fmt.Sprintf("opening durable match store in %s", *dataDir))
		go openDurableStore(ctx, srv, model, *dataDir, *recordsPath, match.DurableOptions{
			Sync:          policy,
			SyncInterval:  interval,
			SnapshotEvery: *snapEvery,
			Logf:          log.Printf,
			OnStage:       srv.ObserveStage,
		})
	case *recordsPath != "":
		srv.SetNotReady(fmt.Sprintf("warm-loading match records from %s", *recordsPath))
		go func() {
			n, err := warmLoadRecords(ctx, srv, srv.MatchStore().Arity(), *recordsPath)
			if err != nil {
				log.Printf("warm-load: %v (after %d records)", err, n)
				srv.SetNotReady(fmt.Sprintf("warm-load of %s failed: %v", *recordsPath, err))
				return
			}
			log.Printf("warm-loaded %d records into the match store", n)
			srv.SetReady()
		}()
	}

	if *pprofAddr != "" {
		// Without these the mutex and block profiles exist but stay
		// silently empty: the runtime samples no contention events until a
		// fraction (mutex) or rate (block) is set.
		runtime.SetMutexProfileFraction(*mutexFrac)
		runtime.SetBlockProfileRate(*blockRate)
		// The debug listener is separate from the serving listener on
		// purpose: profiling and introspection endpoints never share a
		// port (or timeouts) with client traffic. DefaultServeMux carries
		// /debug/pprof (net/http/pprof import) and /debug/vars (expvar).
		go func() {
			log.Printf("debug listener on %s (/debug/pprof, /debug/vars)", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:         *addr,
		Handler:      srv.Handler(),
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTO,
		IdleTimeout:  *idleTO,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (max-batch=%d max-linger=%s)", *addr, *maxBatch, *maxLinger)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight requests (up to %s)", *shutdownTO)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownTO)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
	}
	// Ordering matters: the HTTP drain above means no request is mid-mutation,
	// the batcher drain answers everything already accepted, and only then is
	// the durable store sealed — its unsnapshotted tail rolls into a final
	// snapshot so the next start replays zero log frames.
	srv.Close()
	if d := srv.Durable(); d != nil {
		log.Printf("sealing durable store in %s (final snapshot)", d.Dir())
		if err := d.Close(); err != nil {
			log.Printf("durable store close: %v", err)
		}
	}
	if ps := srv.Partitioned(); ps != nil && ps.Durable() {
		log.Printf("sealing %d durable match partitions (final snapshots)", ps.Partitions())
		if err := ps.Close(); err != nil {
			log.Printf("partitioned store close: %v", err)
		}
	}
	log.Printf("served %d pairs across %d hot-swaps; bye", srv.Served(), srv.Swaps())
}

// openDurableStore replays the data dir in the background (the listener is
// already up; /readyz carries the replay progress), installs the store,
// and seeds it from recordsPath only when the replay produced an empty
// store — a populated data dir already holds its records.
func openDurableStore(ctx context.Context, srv *server.Server, model *learnrisk.Model, dir, recordsPath string, opts match.DurableOptions) {
	opts.Progress = func(phase string, done, total int) {
		if total > 0 {
			srv.SetNotReady(fmt.Sprintf("replaying durable store: %s %d/%d", phase, done, total))
		} else {
			srv.SetNotReady(fmt.Sprintf("replaying durable store: %s %d ops", phase, done))
		}
	}
	d, err := model.OpenDurableMatchStore(dir, srv.MatchStore().Config(), opts)
	if err != nil {
		// The replica must not take traffic with its records missing, and
		// mutations stay refused (the pending gate holds): an operator
		// decision is needed, not a silently empty store.
		log.Printf("durable store: %v", err)
		srv.SetNotReady(fmt.Sprintf("durable store open failed: %v", err))
		return
	}
	rs := d.ReplayStats()
	log.Printf("durable store %s: %d records from snapshot %d + %d tail ops (%d segments, torn=%v) in %s",
		dir, rs.SnapshotRecords, rs.SnapshotSeq, rs.TailFrames, rs.Segments, rs.TornTail, rs.Duration)
	if err := srv.InstallDurableStore(d); err != nil {
		log.Printf("durable store: %v", err)
		srv.SetNotReady(fmt.Sprintf("durable store install failed: %v", err))
		return
	}
	if recordsPath != "" {
		if d.Len() > 0 {
			log.Printf("skipping -records %s: the durable store already holds %d records", recordsPath, d.Len())
		} else {
			srv.SetNotReady(fmt.Sprintf("seeding durable store from %s", recordsPath))
			n, err := warmLoadRecords(ctx, srv, srv.MatchStore().Arity(), recordsPath)
			if err != nil {
				log.Printf("warm-load: %v (after %d records)", err, n)
				srv.SetNotReady(fmt.Sprintf("warm-load of %s failed: %v", recordsPath, err))
				return
			}
			log.Printf("seeded %d records into the durable store", n)
		}
	}
	srv.SetReady()
}

// openPartitionedStore replays every partition's data subdirectory
// concurrently in the background (the listener is already up; /readyz
// aggregates per-partition replay progress), installs the partitioned
// store, and seeds it from recordsPath only when the replay produced an
// empty store.
func openPartitionedStore(ctx context.Context, srv *server.Server, model *learnrisk.Model, dir, recordsPath string, partitions, replicas int, cfg match.Config, opts match.DurableOptions) {
	for i := 0; i < partitions; i++ {
		srv.SetPartitionNotReady(i, "opening")
	}
	progress := func(part int, phase string, done, total int) {
		if total > 0 {
			srv.SetPartitionNotReady(part, fmt.Sprintf("replaying: %s %d/%d", phase, done, total))
		} else {
			srv.SetPartitionNotReady(part, fmt.Sprintf("replaying: %s %d ops", phase, done))
		}
	}
	ps, err := model.OpenDurablePartitionedMatchStore(dir, partitions, replicas, cfg, opts, progress)
	if err != nil {
		// Same stance as the flat durable path: no silently empty replica.
		log.Printf("partitioned store: %v", err)
		srv.SetNotReady(fmt.Sprintf("partitioned store open failed: %v", err))
		return
	}
	log.Printf("partitioned store %s: %d partitions, %d live records", dir, ps.Partitions(), ps.Len())
	if err := srv.InstallPartitionedStore(ps); err != nil {
		log.Printf("partitioned store: %v", err)
		srv.SetNotReady(fmt.Sprintf("partitioned store install failed: %v", err))
		return
	}
	for i := 0; i < partitions; i++ {
		srv.SetPartitionReady(i)
	}
	if recordsPath != "" {
		if ps.Len() > 0 {
			log.Printf("skipping -records %s: the partitioned store already holds %d records", recordsPath, ps.Len())
		} else {
			srv.SetNotReady(fmt.Sprintf("seeding partitioned store from %s", recordsPath))
			n, err := warmLoadRecords(ctx, srv, ps.Arity(), recordsPath)
			if err != nil {
				log.Printf("warm-load: %v (after %d records)", err, n)
				srv.SetNotReady(fmt.Sprintf("warm-load of %s failed: %v", recordsPath, err))
				return
			}
			log.Printf("seeded %d records into the partitioned store", n)
		}
	}
	srv.SetReady()
}

// buildLogger makes the process slog.Logger per -log-format: "text" is
// the human default, "json" emits one JSON object per line — the shape
// log shippers want for the -slow-request stage breakdowns.
func buildLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text", "":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("serve: -log-format %q is not \"text\" or \"json\"", format)
}

// recordAdder is the slice of the server the warm-load needs: accept one
// record's values. Narrowing the dependency keeps the load path testable
// without a listener.
type recordAdder interface {
	AddRecord(values []string) (uint64, error)
}

// warmLoadRecords streams a CSV table (the repository layout dataset.
// ScanTableCSV reads: header row, then id,entity_id,<values...>) into the
// match store one row at a time — the file is never materialized as a
// table, so a multi-gigabyte warm-load holds one record in memory. Only
// the schema arity matters for parsing — attribute types drive metric
// selection at training time, not CSV layout — so the schema handed to the
// scanner carries zero-valued types.
//
// The context is checked per record: cancellation (SIGINT mid-load) stops
// promptly with ctx.Err(). On any failure the returned count is the number
// of records actually applied to the store — the accounting an operator
// needs to judge a partially warmed replica.
func warmLoadRecords(ctx context.Context, dst recordAdder, arity int, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	schema := &dataset.Schema{Attrs: make([]dataset.Attr, arity)}
	loaded := 0
	err = dataset.ScanTableCSV(f, path, schema, func(r dataset.Record) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := dst.AddRecord(r.Values); err != nil {
			return fmt.Errorf("%s record %d (id %q): %w", path, loaded, r.ID, err)
		}
		loaded++
		return nil
	})
	return loaded, err
}

// obtainModel loads the artifact at path, or trains a fresh model on a
// synthetic workload when no path is given.
func obtainModel(path, profile string, scale float64, seed uint64) (*learnrisk.Model, error) {
	if path != "" {
		m, err := learnrisk.LoadFile(path)
		if err != nil {
			return nil, err
		}
		log.Printf("loaded artifact %s", path)
		return m, nil
	}
	log.Printf("no -model artifact: training on synthetic %s at scale %g (seed %d)", profile, scale, seed)
	w, err := learnrisk.Generate(profile, scale, seed)
	if err != nil {
		return nil, err
	}
	m, err := learnrisk.Train(context.Background(), w, learnrisk.Options{Seed: seed})
	if err != nil {
		return nil, fmt.Errorf("startup training: %w", err)
	}
	return m, nil
}
