// Command learnrisk runs the risk-analysis pipeline on a workload and
// prints the ranked risky pairs with their interpretable explanations.
// The trained artifact can be saved and reloaded, so a model trains once
// and serves later runs:
//
//	learnrisk -profile DS -scale 0.05 -top 10
//	learnrisk -profile DS -scale 0.05 -save model.json
//	learnrisk -profile DS -scale 0.05 -load model.json
//	learnrisk -left l.csv -right r.csv -pairs p.csv -attrs "title:text,year:numeric"
//
// Training honors Ctrl-C: cancellation is checked between epochs and the
// command exits with the context error.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	learnrisk "repro"
)

func main() {
	var (
		profile  = flag.String("profile", "DS", "synthetic profile: DS|AB|AG|SG|DA (ignored when -left is set)")
		scale    = flag.Float64("scale", 0.05, "synthetic dataset scale")
		seed     = flag.Uint64("seed", 1, "random seed")
		top      = flag.Int("top", 10, "number of risky pairs to print")
		ratio    = flag.String("ratio", "3:2:5", "train:validation:test split ratio")
		left     = flag.String("left", "", "left table CSV (id,entity_id,attrs...)")
		right    = flag.String("right", "", "right table CSV")
		pairs    = flag.String("pairs", "", "pairs CSV (left_id,right_id,match); empty = token blocking")
		attrs    = flag.String("attrs", "", `schema as "name:type,..." with type in entity-name|entity-set|text|numeric|categorical`)
		rules    = flag.Bool("rules", false, "also print the generated risk features")
		leipzig  = flag.String("leipzig", "", "load a real Leipzig benchmark: dblp-scholar|abt-buy|amazon-google (uses -left, -right and -pairs as the three published files)")
		savePath = flag.String("save", "", "save the trained model artifact to this path")
		loadPath = flag.String("load", "", "load a model artifact instead of training; the workload is scored with it")
		progress = flag.Bool("progress", false, "print training progress to stderr")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var w *learnrisk.Workload
	var err error
	if *leipzig != "" {
		w, err = learnrisk.LoadLeipzig(*leipzig, *left, *right, *pairs)
	} else {
		w, err = loadWorkload(*profile, *scale, *seed, *left, *right, *pairs, *attrs)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: %d pairs, %d matches, %d attributes\n",
		w.Name(), w.Size(), w.Matches(), w.Attributes())

	rep, err := obtainReport(ctx, w, *loadPath, *ratio, *seed, *progress)
	if err != nil {
		fatal(err)
	}
	if *savePath != "" {
		if err := saveModel(rep.Model(), *savePath); err != nil {
			fatal(err)
		}
		fmt.Printf("model saved to %s (fingerprint %.12s)\n", *savePath, rep.Model().Fingerprint())
	}
	fmt.Printf("classifier: F1=%.3f accuracy=%.3f mislabels=%d/%d\n",
		rep.ClassifierF1, rep.ClassifierAccuracy, rep.Mislabels, len(rep.Ranking))
	fmt.Printf("risk model: %d features, coverage %.2f, AUROC=%.3f\n\n",
		rep.NumFeatures, rep.RuleCoverage, rep.AUROC)

	if *rules {
		fmt.Println("risk features:")
		for _, r := range rep.Features() {
			fmt.Println("  " + r)
		}
		fmt.Println()
	}

	names := w.AttrNames()
	n := *top
	if n > len(rep.Ranking) {
		n = len(rep.Ranking)
	}
	for rank, rp := range rep.Ranking[:n] {
		status := "correct"
		if rp.Mislabeled {
			status = "MISLABELED"
		}
		label := "unmatching"
		if rp.Match {
			label = "matching"
		}
		fmt.Printf("#%d risk=%.3f machine=%s (p=%.3f) ground-truth: %s\n",
			rank+1, rp.Risk, label, rp.Prob, status)
		l, r := w.PairValues(rp.PairIndex)
		for a := range names {
			fmt.Printf("    %-12s | %-34s | %s\n", names[a], clip(l[a], 34), clip(r[a], 34))
		}
		why, _ := rep.ExplainIndex(rp.PairIndex)
		for _, line := range why[:minInt(3, len(why))] {
			fmt.Println("    why: " + line)
		}
		fmt.Println()
	}
}

// obtainReport trains a fresh model and evaluates its test split (RunCtx,
// which shares the train-time feature store), or loads a saved artifact and
// evaluates the whole workload against it.
func obtainReport(ctx context.Context, w *learnrisk.Workload, loadPath, ratio string, seed uint64, progress bool) (*learnrisk.Report, error) {
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		model, err := learnrisk.Load(f)
		if err != nil {
			return nil, err
		}
		fmt.Printf("loaded model %s (fingerprint %.12s)\n", loadPath, model.Fingerprint())
		all := make([]int, w.Size())
		for i := range all {
			all[i] = i
		}
		return model.Evaluate(w, all)
	}
	opts := learnrisk.Options{SplitRatio: ratio, Seed: seed}
	if progress {
		opts.Progress = func(stage string, done, total int) {
			if done == total || done%200 == 0 {
				fmt.Fprintf(os.Stderr, "  %s: %d/%d\n", stage, done, total)
			}
		}
	}
	return learnrisk.RunCtx(ctx, w, opts)
}

func saveModel(m *learnrisk.Model, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		_ = f.Close() // best-effort: the save error is the one to report
		return err
	}
	return f.Close()
}

func loadWorkload(profile string, scale float64, seed uint64, left, right, pairs, attrs string) (*learnrisk.Workload, error) {
	if left == "" {
		return learnrisk.Generate(profile, scale, seed)
	}
	if right == "" || attrs == "" {
		return nil, fmt.Errorf("-left requires -right and -attrs")
	}
	var schema []learnrisk.Attr
	for _, part := range strings.Split(attrs, ",") {
		nt := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("bad attr spec %q", part)
		}
		schema = append(schema, learnrisk.Attr{Name: nt[0], Type: nt[1]})
	}
	return learnrisk.LoadCSV("csv", left, right, pairs, schema)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "learnrisk:", err)
	os.Exit(1)
}
