// Command learnrisk runs the full risk-analysis pipeline on a workload and
// prints the ranked risky pairs with their interpretable explanations.
//
//	learnrisk -profile DS -scale 0.05 -top 10
//	learnrisk -left l.csv -right r.csv -pairs p.csv -attrs "title:text,year:numeric"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	learnrisk "repro"
)

func main() {
	var (
		profile = flag.String("profile", "DS", "synthetic profile: DS|AB|AG|SG|DA (ignored when -left is set)")
		scale   = flag.Float64("scale", 0.05, "synthetic dataset scale")
		seed    = flag.Uint64("seed", 1, "random seed")
		top     = flag.Int("top", 10, "number of risky pairs to print")
		ratio   = flag.String("ratio", "3:2:5", "train:validation:test split ratio")
		left    = flag.String("left", "", "left table CSV (id,entity_id,attrs...)")
		right   = flag.String("right", "", "right table CSV")
		pairs   = flag.String("pairs", "", "pairs CSV (left_id,right_id,match); empty = token blocking")
		attrs   = flag.String("attrs", "", `schema as "name:type,..." with type in entity-name|entity-set|text|numeric|categorical`)
		rules   = flag.Bool("rules", false, "also print the generated risk features")
		leipzig = flag.String("leipzig", "", "load a real Leipzig benchmark: dblp-scholar|abt-buy|amazon-google (uses -left, -right and -pairs as the three published files)")
	)
	flag.Parse()

	var w *learnrisk.Workload
	var err error
	if *leipzig != "" {
		w, err = learnrisk.LoadLeipzig(*leipzig, *left, *right, *pairs)
	} else {
		w, err = loadWorkload(*profile, *scale, *seed, *left, *right, *pairs, *attrs)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("workload %s: %d pairs, %d matches, %d attributes\n",
		w.Name(), w.Size(), w.Matches(), w.Attributes())

	rep, err := learnrisk.Run(w, learnrisk.Options{SplitRatio: *ratio, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("classifier: F1=%.3f accuracy=%.3f mislabels=%d/%d\n",
		rep.ClassifierF1, rep.ClassifierAccuracy, rep.Mislabels, len(rep.Ranking))
	fmt.Printf("risk model: %d features, coverage %.2f, AUROC=%.3f\n\n",
		rep.NumFeatures, rep.RuleCoverage, rep.AUROC)

	if *rules {
		fmt.Println("risk features:")
		for _, r := range rep.Features() {
			fmt.Println("  " + r)
		}
		fmt.Println()
	}

	names := w.AttrNames()
	n := *top
	if n > len(rep.Ranking) {
		n = len(rep.Ranking)
	}
	for rank, rp := range rep.Ranking[:n] {
		status := "correct"
		if rp.Mislabeled {
			status = "MISLABELED"
		}
		label := "unmatching"
		if rp.Match {
			label = "matching"
		}
		fmt.Printf("#%d risk=%.3f machine=%s (p=%.3f) ground-truth: %s\n",
			rank+1, rp.Risk, label, rp.Prob, status)
		l, r := w.PairValues(rp.PairIndex)
		for a := range names {
			fmt.Printf("    %-12s | %-34s | %s\n", names[a], clip(l[a], 34), clip(r[a], 34))
		}
		for _, line := range rep.Explain(rp)[:minInt(3, len(rep.Explain(rp)))] {
			fmt.Println("    why: " + line)
		}
		fmt.Println()
	}
}

func loadWorkload(profile string, scale float64, seed uint64, left, right, pairs, attrs string) (*learnrisk.Workload, error) {
	if left == "" {
		return learnrisk.Generate(profile, scale, seed)
	}
	if right == "" || attrs == "" {
		return nil, fmt.Errorf("-left requires -right and -attrs")
	}
	var schema []learnrisk.Attr
	for _, part := range strings.Split(attrs, ",") {
		nt := strings.SplitN(strings.TrimSpace(part), ":", 2)
		if len(nt) != 2 {
			return nil, fmt.Errorf("bad attr spec %q", part)
		}
		schema = append(schema, learnrisk.Attr{Name: nt[0], Type: nt[1]})
	}
	return learnrisk.LoadCSV("csv", left, right, pairs, schema)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "learnrisk:", err)
	os.Exit(1)
}
