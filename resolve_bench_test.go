// Online-resolve benchmarks: a warm incremental index probed per record vs
// the naive alternative — rebuilding batch blocking from scratch for every
// probe — at 10k+ stored records. cmd/bench records them into
// BENCH_PR5.json (Makefile bench-pr5): resolve latency (mean, p50, p99),
// candidates per probe, and the warm-vs-rebuild speedup the acceptance
// criterion pins at >= 10x.
package learnrisk_test

import (
	"context"
	"slices"
	"sort"
	"sync"
	"testing"
	"time"

	learnrisk "repro"
	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/dataset"
	"repro/internal/match"
)

const resolveBenchK = 10

var (
	resolveOnce   sync.Once
	resolveModel  *learnrisk.Model
	resolveStore  *match.Store
	resolveRight  *dataset.Table
	resolveProbes [][]string
	resolveErr    error
)

// resolveBenchSetup trains one small model and indexes a 10k+-record right
// table (DS profile at scale 0.25: 10354 records) into a warm match store.
// Probes are the corresponding left-table records.
func resolveBenchSetup(b *testing.B) (*learnrisk.Model, *match.Store) {
	b.Helper()
	resolveOnce.Do(func() {
		w, err := learnrisk.Generate("DS", 0.05, 7)
		if err != nil {
			resolveErr = err
			return
		}
		m, err := learnrisk.Train(context.Background(), w, learnrisk.Options{Seed: 7})
		if err != nil {
			resolveErr = err
			return
		}
		spec, _ := datagen.ByName("DS", 11)
		big, err := datagen.Generate(spec, 0.25)
		if err != nil {
			resolveErr = err
			return
		}
		st, err := m.NewMatchStore(match.Config{})
		if err != nil {
			resolveErr = err
			return
		}
		for _, r := range big.Right.Records {
			if _, err := st.Add(r.Values); err != nil {
				resolveErr = err
				return
			}
		}
		probes := make([][]string, len(big.Left.Records))
		for i, r := range big.Left.Records {
			probes[i] = r.Values
		}
		resolveModel, resolveStore, resolveRight, resolveProbes = m, st, big.Right, probes
	})
	if resolveErr != nil {
		b.Fatal(resolveErr)
	}
	return resolveModel, resolveStore
}

// reportLatencies turns per-op samples into p50/p99 metrics (microseconds).
func reportLatencies(b *testing.B, samples []time.Duration) {
	if len(samples) == 0 {
		return
	}
	slices.Sort(samples)
	p := func(q float64) float64 {
		i := int(q * float64(len(samples)-1))
		return float64(samples[i].Nanoseconds()) / 1e3
	}
	b.ReportMetric(p(0.50), "p50-us")
	b.ReportMetric(p(0.99), "p99-us")
}

// BenchmarkOnlineResolveWarm10k is the production shape: the index is warm
// and each probe pays only its posting-list walk plus candidate scoring.
func BenchmarkOnlineResolveWarm10k(b *testing.B) {
	m, st := resolveBenchSetup(b)
	probes := resolveProbes
	samples := make([]time.Duration, 0, b.N)
	candidates := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		res, err := m.Resolve(st, probes[i%len(probes)], resolveBenchK)
		samples = append(samples, time.Since(t0))
		if err != nil {
			b.Fatal(err)
		}
		candidates += len(res)
	}
	b.StopTimer()
	reportLatencies(b, samples)
	b.ReportMetric(float64(st.Stats().Candidates)/float64(st.Stats().Probes), "cand/probe")
}

// BenchmarkOnlineResolveRebuildPerProbe10k is the naive baseline the
// incremental index replaces: every probe rebuilds batch blocking from
// scratch over all stored records (blocking.Candidates of a one-record
// left table), then scores and ranks the same candidates the same way.
func BenchmarkOnlineResolveRebuildPerProbe10k(b *testing.B) {
	m, _ := resolveBenchSetup(b)
	right := resolveRight
	probes := resolveProbes
	schema := right.Schema
	samples := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := probes[i%len(probes)]
		t0 := time.Now()
		left := &dataset.Table{Schema: schema, Records: []dataset.Record{{ID: "probe", Values: probe}}}
		pairs := blocking.Candidates(left, right, blocking.Config{})
		type scored struct {
			idx int
			sc  learnrisk.PairScore
		}
		results := make([]scored, 0, len(pairs))
		for _, p := range pairs {
			sc, err := m.Score(learnrisk.Pair{Left: probe, Right: right.Records[p.Right].Values})
			if err != nil {
				b.Fatal(err)
			}
			results = append(results, scored{p.Right, sc})
		}
		sort.Slice(results, func(a, c int) bool {
			if results[a].sc.Prob != results[c].sc.Prob {
				return results[a].sc.Prob > results[c].sc.Prob
			}
			return results[a].idx < results[c].idx
		})
		if len(results) > resolveBenchK {
			results = results[:resolveBenchK]
		}
		samples = append(samples, time.Since(t0))
	}
	b.StopTimer()
	reportLatencies(b, samples)
}
