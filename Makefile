GO ?= go

.PHONY: build build-examples vet test race tier1 bench bench-baseline

build:
	$(GO) build ./...

# build-examples compiles every directory under examples/ explicitly, so
# API drift in the examples fails the tier-1 gate even if a future build
# target narrows its package list.
build-examples:
	$(GO) build ./examples/...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race covers the packages whose hot paths run under internal/par worker
# pools (disjoint-write contracts), plus the facade's concurrent serving
# path (Model.Score/ScoreBatch from many goroutines).
race:
	$(GO) test -race ./internal/par/... ./internal/featstore/... ./internal/rules/... ./internal/core/...
	$(GO) test -race -run 'TestScoreConcurrent|TestScoreBatchConcurrent' .

# tier1 is the verification gate every PR must keep green (ROADMAP.md).
tier1: build build-examples vet test race

# bench refreshes the "current" section of BENCH_PR1.json with this
# machine's numbers; bench-baseline records the pre-change numbers before
# starting a perf PR. See PERFORMANCE.md.
bench:
	$(GO) run ./cmd/bench -out BENCH_PR1.json -label current

bench-baseline:
	$(GO) run ./cmd/bench -out BENCH_PR1.json -label baseline
