GO ?= go

.PHONY: build vet test race tier1 bench bench-baseline

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race covers the packages whose hot paths run under internal/par worker
# pools (disjoint-write contracts).
race:
	$(GO) test -race ./internal/par/... ./internal/featstore/... ./internal/rules/... ./internal/core/...

# tier1 is the verification gate every PR must keep green (ROADMAP.md).
tier1: build vet test race

# bench refreshes the "current" section of BENCH_PR1.json with this
# machine's numbers; bench-baseline records the pre-change numbers before
# starting a perf PR. See PERFORMANCE.md.
bench:
	$(GO) run ./cmd/bench -out BENCH_PR1.json -label current

bench-baseline:
	$(GO) run ./cmd/bench -out BENCH_PR1.json -label baseline
