GO ?= go

.PHONY: build build-examples build-cmds vet lint fmtcheck test race cover allocs tier1 crash bench bench-baseline bench-serve bench-pr4 bench-pr4-baseline bench-pr5 bench-pr6 bench-pr8 bench-pr9 bench-pr10

build:
	$(GO) build ./...

# build-examples compiles every directory under examples/ explicitly, so
# API drift in the examples fails the tier-1 gate even if a future build
# target narrows its package list.
build-examples:
	$(GO) build ./examples/...

# build-cmds compiles every command explicitly for the same reason — the
# serving binary (cmd/serve) in particular must always build.
build-cmds:
	$(GO) build ./cmd/...

vet:
	$(GO) vet ./...

# lint runs the project's own invariant checkers (cmd/vetkit — hotpath,
# walbeforeapply, lockdiscipline, closecheck, expvarlint; see the README's
# "Static analysis" section) and, when the pinned tools are present in the
# module cache, staticcheck and govulncheck. The external tools are
# best-effort: this repo builds offline with zero dependencies, so an
# unreachable proxy skips them with a note instead of failing the gate.
# vetkit itself always runs and any finding fails the build.
STATICCHECK_VERSION = honnef.co/go/tools/cmd/staticcheck@2025.1
GOVULNCHECK_VERSION = golang.org/x/vuln/cmd/govulncheck@v1.1.4

lint:
	$(GO) run ./cmd/vetkit ./...
	@if $(GO) run $(STATICCHECK_VERSION) ./... 2>/dev/null; then \
	  echo "lint: staticcheck ok"; \
	else \
	  echo "lint: staticcheck unavailable or found issues (offline builds skip it; run '$(GO) run $(STATICCHECK_VERSION) ./...' to see details)"; \
	fi
	@if $(GO) run $(GOVULNCHECK_VERSION) ./... 2>/dev/null; then \
	  echo "lint: govulncheck ok"; \
	else \
	  echo "lint: govulncheck unavailable (offline builds skip it)"; \
	fi

# fmtcheck fails loudly on unformatted files (gofmt is not enforced by any
# other target, and unformatted files turn every editor save into noise).
fmtcheck:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
	  echo "fmtcheck: FAIL — gofmt needed on:"; echo "$$out"; exit 1; \
	fi; echo "fmtcheck: ok"

test:
	$(GO) test ./...

# race covers the packages whose hot paths run under internal/par worker
# pools (disjoint-write contracts), the facade's concurrent serving and
# resolve paths (Model.Score/ScoreBatch/Resolve from many goroutines while
# the match store mutates), the online match store itself (concurrent
# Add/Delete/probe across compaction), the durability layer (concurrent
# WAL append / snapshot rotation / replay), and the HTTP serving layer
# (micro-batcher coalescing + model hot-swap under load).
race:
	$(GO) test -race ./internal/par/... ./internal/featstore/... ./internal/rules/... ./internal/core/... ./internal/blocking/...
	$(GO) test -race ./internal/server/... ./internal/match/... ./internal/wal/... ./internal/partition/... ./internal/obs/...
	$(GO) test -race -run 'TestScoreConcurrent|TestScoreBatchConcurrent|TestResolveConcurrent' .

# cover enforces statement-coverage floors on the serving-grade packages:
# the HTTP/batching layer, the feature store, and the facade (golden
# regression + Save/Load property tests live there). Raise the floors as
# coverage grows; never lower them.
COVER_FLOORS = ./internal/server:80 ./internal/featstore:85 ./internal/match:80 ./internal/wal:85 ./internal/analysis:80 ./internal/partition:80 ./internal/obs:85 .:85

cover:
	@set -e; for pf in $(COVER_FLOORS); do \
	  pkg=$${pf%%:*}; floor=$${pf##*:}; \
	  out=$$($(GO) test -cover $$pkg) || { echo "$$out"; echo "cover: FAIL $$pkg: tests failed"; exit 1; }; \
	  pct=$$(echo "$$out" | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
	  if [ -z "$$pct" ]; then \
	    echo "cover: FAIL $$pkg: no coverage line in output: $$out"; exit 1; \
	  fi; \
	  ok=$$(awk -v p="$$pct" -v f="$$floor" 'BEGIN{print (p>=f) ? 1 : 0}'); \
	  if [ "$$ok" != "1" ]; then \
	    echo "cover: FAIL $$pkg at $$pct% (floor $$floor%)"; exit 1; \
	  fi; \
	  echo "cover: $$pkg $$pct% (floor $$floor%)"; \
	done

# allocs runs the allocation-regression guards explicitly: steady-state
# Model.Score and the rules/featstore/metrics scratch paths are pinned to
# 0 allocs/op, ScoreBatch to a small per-call bound (model_alloc_test.go).
# They also run as part of `make test`; this target is the fast loop while
# working on the hot path.
allocs:
	$(GO) test -run 'Alloc' . ./internal/rules/ ./internal/featstore/ ./internal/metrics/ ./internal/nn/ ./internal/obs/

# tier1 is the verification gate every PR must keep green (ROADMAP.md).
tier1: build build-examples build-cmds vet lint fmtcheck test race cover allocs

# crash runs the durability fault-injection and crash-recovery suites
# verbosely: torn tails at every byte boundary, bit flips, oversized length
# claims, failing writers/fsync, kill-between-rotate-and-publish, stale
# snapshot temp cleanup, damaged snapshots. All of it also runs under
# `make test`; this is the focused loop while working on recovery code.
crash:
	$(GO) test -v -count=1 -run 'Torn|BitFlip|Oversized|ZeroFilled|Failing|Rollback' ./internal/wal/
	$(GO) test -v -count=1 -run 'Crash|Corrupt|Stale|Damaged|FailingWAL' ./internal/match/

# bench refreshes the "current" section of BENCH_PR1.json with this
# machine's numbers; bench-baseline records the pre-change numbers before
# starting a perf PR. See PERFORMANCE.md.
bench:
	$(GO) run ./cmd/bench -out BENCH_PR1.json -label current

bench-baseline:
	$(GO) run ./cmd/bench -out BENCH_PR1.json -label baseline

# bench-serve measures serving throughput: direct Score calls vs the
# micro-batcher (greedy and lingering). See PERFORMANCE.md.
bench-serve:
	$(GO) test -run '^$$' -bench BenchmarkServe -benchmem ./internal/server

# bench-pr4 refreshes the "current" section of BENCH_PR4.json — the
# score-time hot path (Score, ScoreBatch, ExplainPair, blocking);
# bench-pr4-baseline records the pre-change numbers before a perf PR
# touching that path. Compare the two sections for the before/after.
SERVE_BENCHES = 'ServeScore|ServeScoreBatch|ServeExplainPair|ServeBlocking'
bench-pr4:
	$(GO) run ./cmd/bench -out BENCH_PR4.json -label current -bench $(SERVE_BENCHES) -benchtime 3s

bench-pr4-baseline:
	$(GO) run ./cmd/bench -out BENCH_PR4.json -label baseline -bench $(SERVE_BENCHES) -benchtime 3s

# bench-pr5 refreshes BENCH_PR5.json — online resolve on a warm 10k-record
# incremental index vs the naive rebuild-per-probe baseline (latency mean,
# p50/p99 and candidates per probe). The acceptance bar is warm >= 10x
# faster than rebuild; compare the two benchmarks' ns/op.
bench-pr5:
	$(GO) run ./cmd/bench -out BENCH_PR5.json -label current -bench OnlineResolve -benchtime 2s

# bench-pr6 refreshes BENCH_PR6.json — the durability layer: restart replay
# throughput (records/sec) from a pure WAL tail vs from a snapshot, and
# per-record ingest latency of the in-memory store vs the durable store at
# fsync=never/always. The mem vs fsync=never gap is the WAL framing
# overhead; fsync=always buys an fsync-per-ack durability guarantee.
bench-pr6:
	$(GO) run ./cmd/bench -out BENCH_PR6.json -label current -bench Durable -benchtime 2s

# bench-pr8 refreshes BENCH_PR8.json — the bounded-memory batch pipeline:
# the materialized path (blocking.Candidates + a full featstore.Store) vs
# the streamed path (blocking.CandidateSeq + featstore.Streamer windows)
# folding every metric row of a ~106k-record workload (~219k candidate
# pairs). The acceptance bar is >= 10x lower peak heap growth (the peakB
# metric) with no wall-time regression; the -compare line prints the
# materialized/streamed ratios directly after recording.
bench-pr8:
	$(GO) run ./cmd/bench -out BENCH_PR8.json -label current -bench BatchPipeline -benchtime 3x \
	  -compare BatchPipelineMaterialized,BatchPipelineStreamed

# bench-pr9 refreshes BENCH_PR9.json — the partitioned scatter-gather
# resolve path under closed-loop HTTP load (cmd/loadgen): the same mixed
# add/delete/resolve traffic against a 1-partition and a 4-partition
# server, stepping client concurrency and recording throughput plus
# p50/p95/p99 resolve latency per step. The flat (unpartitioned) label
# rides along as the zero-router baseline. See PERFORMANCE.md for the
# crossover analysis.
LOADGEN_FLAGS = -steps 1,2,4,8,16,32 -step-duration 2s -preload 400 -out BENCH_PR9.json
bench-pr9:
	$(GO) run ./cmd/loadgen $(LOADGEN_FLAGS) -partitions 0 -label flat
	$(GO) run ./cmd/loadgen $(LOADGEN_FLAGS) -partitions 1 -label parts-1
	$(GO) run ./cmd/loadgen $(LOADGEN_FLAGS) -partitions 4 -replicas 2 -label parts-4

# bench-pr10 measures the observability layer itself: the warm resolve
# path with stage tracing off vs on (the acceptance bar is the delta
# staying within run-to-run noise) plus a loadgen pass whose per-step
# metrics now carry the server-side stage histograms scraped from GET
# /metrics (where inside the server the client-visible p99 was spent).
LOADGEN10_FLAGS = -steps 1,4,16 -step-duration 2s -preload 400 -out BENCH_PR10.json
bench-pr10:
	$(GO) run ./cmd/bench -bench 'Obs' -benchtime 200x -out BENCH_PR10.json -label current
	$(GO) run ./cmd/loadgen $(LOADGEN10_FLAGS) -partitions 4 -replicas 2 -label parts-4
