// Tracing-overhead benchmarks: the same warm resolve path with stage
// tracing off (nil *Trace threaded through, the production default when
// no request trace is attached) vs on (a live Trace recording every
// stage). cmd/bench records them into BENCH_PR10.json (Makefile
// bench-pr10); the acceptance bar is the on/off delta staying within
// run-to-run noise, which PERFORMANCE.md quantifies from these numbers.
package learnrisk_test

import (
	"testing"

	"repro/internal/obs"
)

// BenchmarkObsResolveWarmTracingOff is the baseline: identical to the
// warm resolve path with a nil trace — every timing branch short-circuits
// on the nil check without reading the clock.
func BenchmarkObsResolveWarmTracingOff(b *testing.B) {
	m, st := resolveBenchSetup(b)
	probes := resolveProbes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ResolveTraced(st, probes[i%len(probes)], resolveBenchK, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsResolveWarmTracingOn pays the full cost of a live trace:
// clock reads around tokenize/score/merge and atomic stage accumulation.
func BenchmarkObsResolveWarmTracingOn(b *testing.B) {
	m, st := resolveBenchSetup(b)
	probes := resolveProbes
	tr := obs.NewTrace(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ResolveTraced(st, probes[i%len(probes)], resolveBenchK, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if tr.Total() <= 0 {
		b.Fatal("trace recorded nothing — the traced path was not exercised")
	}
}

// BenchmarkObsHistogramObserveContended measures the shared-instrument
// cost every traced stage ultimately funnels into: concurrent Observe on
// one histogram across GOMAXPROCS goroutines.
func BenchmarkObsHistogramObserveContended(b *testing.B) {
	var h obs.Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(17)
		for pb.Next() {
			h.Observe(v)
			v = (v*2862933555777941757 + 3037000493) & 0xffffff
		}
	})
}
