package learnrisk

import (
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/match"
	"repro/internal/wal"
)

// The PR6 durability benchmarks (make bench-pr6 → BENCH_PR6.json):
// replay throughput on restart (records/sec, the re-warm a durable store
// avoids doing over HTTP) and the per-record ingest overhead of the WAL at
// each fsync policy against the in-memory store as baseline.

const durableBenchRecords = 5000

func benchValues(rng *rand.Rand, i int) []string {
	return []string{
		fmt.Sprintf("entity%d name%d token%d", i, rng.Intn(2000), rng.Intn(500)),
		fmt.Sprintf("street%d city%d", rng.Intn(800), rng.Intn(90)),
		fmt.Sprintf("attr%d", rng.Intn(3000)),
	}
}

// populateDurableDir builds one data dir holding durableBenchRecords as a
// pure WAL tail (no snapshot), and optionally compacts it into a snapshot.
func populateDurableDir(b *testing.B, snapshot bool) string {
	b.Helper()
	dir := b.TempDir()
	d, err := match.OpenDurable(dir, 3, match.Config{}, match.DurableOptions{
		Sync: wal.SyncNever, SnapshotEvery: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < durableBenchRecords; i++ {
		if _, err := d.Add(benchValues(rng, i)); err != nil {
			b.Fatal(err)
		}
	}
	if snapshot {
		if _, err := d.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
	// Leave the tail in place: Sync, then abandon without Close so the log
	// (not a shutdown snapshot) is what replay reads.
	if err := d.Sync(); err != nil {
		b.Fatal(err)
	}
	if !snapshot {
		return cloneBenchDir(b, dir)
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}
	return dir
}

// cloneBenchDir copies the data dir so the still-open writer of the
// populated store cannot interfere with replays.
func cloneBenchDir(b *testing.B, src string) string {
	b.Helper()
	dst := b.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		b.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(src + "/" + e.Name())
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(dst+"/"+e.Name(), data, 0o644); err != nil {
			b.Fatal(err)
		}
	}
	return dst
}

func benchReplay(b *testing.B, dir string) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := match.OpenDurable(dir, 3, match.Config{}, match.DurableOptions{
			Sync: wal.SyncNever, SnapshotEvery: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if d.Len() != durableBenchRecords {
			b.Fatalf("replay recovered %d records, want %d", d.Len(), durableBenchRecords)
		}
		d.Close()
	}
	b.StopTimer()
	b.ReportMetric(float64(durableBenchRecords)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
}

// BenchmarkDurableReplayWAL restarts from a pure operation-log tail (the
// crash shape: no shutdown snapshot) — 5k records replayed frame by frame
// into the blocking index.
func BenchmarkDurableReplayWAL(b *testing.B) {
	dir := populateDurableDir(b, false)
	benchReplay(b, dir)
}

// BenchmarkDurableReplaySnapshot restarts from a snapshot (the clean-
// shutdown shape: zero tail frames) — the bulk-load path replay rides
// after every snapshot cut.
func BenchmarkDurableReplaySnapshot(b *testing.B) {
	dir := populateDurableDir(b, true)
	benchReplay(b, dir)
}

// BenchmarkDurableIngest measures the per-record write path: the bare
// in-memory store against the durable store at each fsync policy. The gap
// between mem and fsync=never is the WAL framing overhead; fsync=always
// adds one fsync per acknowledged record.
func BenchmarkDurableIngest(b *testing.B) {
	type adder interface {
		Add(values []string) (uint64, error)
	}
	cases := []struct {
		name string
		open func(b *testing.B) adder
	}{
		{"mem", func(b *testing.B) adder {
			st, err := match.New(3, match.Config{})
			if err != nil {
				b.Fatal(err)
			}
			return st
		}},
		{"fsync=never", func(b *testing.B) adder {
			d, err := match.OpenDurable(b.TempDir(), 3, match.Config{}, match.DurableOptions{
				Sync: wal.SyncNever, SnapshotEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { d.Close() })
			return d
		}},
		{"fsync=always", func(b *testing.B) adder {
			d, err := match.OpenDurable(b.TempDir(), 3, match.Config{}, match.DurableOptions{
				Sync: wal.SyncAlways, SnapshotEvery: -1,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { d.Close() })
			return d
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			st := tc.open(b)
			rng := rand.New(rand.NewSource(2))
			vals := make([][]string, 4096)
			for i := range vals {
				vals[i] = benchValues(rng, i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := st.Add(vals[i%len(vals)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
