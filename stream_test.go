package learnrisk

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/blocking"
	"repro/internal/datagen"
	"repro/internal/dataset"
)

// streamOracleWorkloads builds the oracle fixture: the same two generated
// tables as (a) a materialized workload whose pairs come from token
// blocking — exactly what LoadCSV without a pairs file produces — and (b) a
// tables-only workload the streaming path blocks lazily.
func streamOracleWorkloads(t *testing.T) (materialized, tablesOnly *Workload) {
	t.Helper()
	gw := datagen.MustGenerate(datagen.DS(7), 0.03)
	pairs := blocking.Candidates(gw.Left, gw.Right, blocking.Config{})
	if len(pairs) < 200 {
		t.Fatalf("oracle fixture too sparse: %d blocked pairs", len(pairs))
	}
	materialized = wrap(&dataset.Workload{Name: "oracle", Left: gw.Left, Right: gw.Right, Pairs: pairs})
	tablesOnly = wrap(&dataset.Workload{Name: "oracle", Left: gw.Left, Right: gw.Right})
	return materialized, tablesOnly
}

// sameReport asserts byte-level equality of everything a Report exposes.
func sameReport(t *testing.T, label string, want, got *Report) {
	t.Helper()
	if want.AUROC != got.AUROC || want.ClassifierF1 != got.ClassifierF1 ||
		want.ClassifierAccuracy != got.ClassifierAccuracy || want.Mislabels != got.Mislabels ||
		want.NumFeatures != got.NumFeatures || want.RuleCoverage != got.RuleCoverage {
		t.Fatalf("%s: report scalars differ:\nwant %+v\ngot  %+v", label, want, got)
	}
	if len(want.Ranking) != len(got.Ranking) {
		t.Fatalf("%s: ranking lengths differ: %d vs %d", label, len(want.Ranking), len(got.Ranking))
	}
	for i := range want.Ranking {
		if want.Ranking[i] != got.Ranking[i] {
			t.Fatalf("%s: ranking[%d] differs: %+v vs %+v", label, i, want.Ranking[i], got.Ranking[i])
		}
	}
	wf, gf := want.Features(), got.Features()
	if strings.Join(wf, "\n") != strings.Join(gf, "\n") {
		t.Fatalf("%s: features differ:\n%v\nvs\n%v", label, wf, gf)
	}
	for _, rp := range want.Ranking[:min(5, len(want.Ranking))] {
		we, wok := want.ExplainIndex(rp.PairIndex)
		ge, gok := got.ExplainIndex(rp.PairIndex)
		if wok != gok || strings.Join(we, "\n") != strings.Join(ge, "\n") {
			t.Fatalf("%s: explanation of pair %d differs:\n%v\nvs\n%v", label, rp.PairIndex, we, ge)
		}
	}
}

func saveBytes(t *testing.T, m *Model) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestRunStreamMatchesRun is the PR's acceptance oracle: the streamed
// pipeline (lazy blocking -> windowed metric rows -> one-pass training and
// evaluation) must be bit-identical to the materialized path — same pair
// order, same split, same report bytes, same saved artifact — whether the
// stream replays a materialized pair list or blocks the tables lazily.
func TestRunStreamMatchesRun(t *testing.T) {
	wm, ws := streamOracleWorkloads(t)
	opts := Options{RiskEpochs: 80, ClassifierEpochs: 10, Seed: 7}

	want, err := Run(wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	fromTables, err := RunStream(ws, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "tables-only stream vs materialized run", want, fromTables)
	fromPairs, err := RunStream(wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "materialized stream vs materialized run", want, fromPairs)

	wantArt := saveBytes(t, want.Model())
	if !bytes.Equal(wantArt, saveBytes(t, fromTables.Model())) {
		t.Fatal("TrainStream artifact bytes differ from Train's")
	}
	if !bytes.Equal(wantArt, saveBytes(t, fromPairs.Model())) {
		t.Fatal("TrainStream-over-pairs artifact bytes differ from Train's")
	}
}

// TestEvaluateStreamMatchesEvaluate: one model, both evaluation paths, any
// index subset — including duplicates, which the streamed position map must
// fan out.
func TestEvaluateStreamMatchesEvaluate(t *testing.T) {
	wm, ws := streamOracleWorkloads(t)
	opts := Options{RiskEpochs: 80, ClassifierEpochs: 10, Seed: 7}
	m, err := Train(context.Background(), wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	idx := m.TestPairs()
	idx = append(idx[:len(idx):len(idx)], idx[0], idx[0], idx[len(idx)/2])
	want, err := m.Evaluate(wm, idx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EvaluateStream(ws, idx)
	if err != nil {
		t.Fatal(err)
	}
	sameReport(t, "EvaluateStream vs Evaluate", want, got)
}

func TestTrainStreamCancellation(t *testing.T) {
	_, ws := streamOracleWorkloads(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainStream(ctx, ws, Options{ClassifierEpochs: 5, RiskEpochs: 10}); err == nil {
		t.Fatal("canceled context should abort TrainStream")
	}
}

func TestStreamErrorPaths(t *testing.T) {
	wm, ws := streamOracleWorkloads(t)
	if _, err := TrainStream(context.Background(), ws, Options{RuleDepth: -1}); err == nil {
		t.Error("invalid options should fail")
	}
	m, err := Train(context.Background(), wm, Options{RiskEpochs: 40, ClassifierEpochs: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvaluateStream(ws, nil); err == nil {
		t.Error("empty index set should fail")
	}
	if _, err := m.EvaluateStream(ws, []int{-1}); err == nil {
		t.Error("negative index should fail")
	}
	if _, err := m.EvaluateStream(wm, []int{wm.Size()}); err == nil {
		t.Error("out-of-range index on a materialized workload should fail")
	}
	// On a tables-only workload an index beyond the stream's end is only
	// detectable after the stream ends.
	if _, err := m.EvaluateStream(ws, []int{1 << 30}); err == nil {
		t.Error("index beyond the candidate stream should fail")
	}
	// Schema mismatch.
	other, err := Generate("AG", 0.02, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.EvaluateStream(other, []int{0}); err == nil {
		t.Error("mismatched schema should fail")
	}
}

// TestLoadTablesCSVStreamsLoadCSVPairs: the tables-only loader plus lazy
// blocking reproduces LoadCSV's blocked pair list exactly.
func TestLoadTablesCSVStreamsLoadCSVPairs(t *testing.T) {
	dir := t.TempDir()
	leftCSV := "id,entity_id,title,year\nl0,e0,spatial join methods,1993\nl1,e1,query optimization,1998\nl2,e2,spatial query methods,1995\n"
	rightCSV := "id,entity_id,title,year\nr0,e0,spatial join methods survey,1993\nr1,e1,query optimization techniques,1998\nr2,e9,spatial indexing,1995\n"
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	lp := write("left.csv", leftCSV)
	rp := write("right.csv", rightCSV)
	attrs := []Attr{{Name: "title", Type: "text"}, {Name: "year", Type: "numeric"}}

	blocked, err := LoadCSV("csvtest", lp, rp, "", attrs)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := LoadTablesCSV("csvtest", lp, rp, attrs)
	if err != nil {
		t.Fatal(err)
	}
	if tables.Size() != 0 {
		t.Errorf("tables-only workload reports %d pairs, want 0", tables.Size())
	}
	var streamed []dataset.Pair
	for p := range tables.candidateSeq() {
		streamed = append(streamed, p)
	}
	if len(streamed) != blocked.Size() || len(streamed) == 0 {
		t.Fatalf("streamed %d pairs, LoadCSV blocked %d", len(streamed), blocked.Size())
	}
	for i, p := range streamed {
		if p != blocked.inner.Pairs[i] {
			t.Fatalf("pair %d: streamed %+v, materialized %+v", i, p, blocked.inner.Pairs[i])
		}
	}

	if _, err := LoadTablesCSV("x", "/nonexistent", rp, attrs); err == nil {
		t.Error("missing left table should fail")
	}
	if _, err := LoadTablesCSV("x", lp, "/nonexistent", attrs); err == nil {
		t.Error("missing right table should fail")
	}
	if _, err := LoadTablesCSV("x", lp, rp, nil); err == nil {
		t.Error("empty schema should fail")
	}
}
