package learnrisk

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"unicode/utf8"

	"repro/internal/classifier"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/dtree"
	"repro/internal/eval"
	"repro/internal/featstore"
	"repro/internal/metrics"
	"repro/internal/par"
	"repro/internal/rules"
)

// Model is the trained LearnRisk artifact: the machine classifier, the
// generated risk features compiled for evaluation, the fitted risk model
// (learned weights, RSDs, influence function), and the schema fingerprint
// binding them to the workload shape they were trained on. A Model is built
// once by Train (or restored by Load) and then reused: Evaluate ranks a
// labeled split exactly as Run does, while Score/ScoreBatch risk-score
// fresh candidate pairs without ground truth and without retraining.
//
// A Model is immutable after Train/Load and safe for concurrent use — any
// number of goroutines may call Score, ScoreBatch, ExplainPair and Evaluate
// simultaneously. The only mutable state is the pool of scoring scratch
// buffers, which sync.Pool manages per goroutine.
type Model struct {
	attrs   []Attr // schema (name + type), the fingerprint's source of truth
	fp      string
	opts    Options
	cat     *metrics.Catalog // catalog with the training corpora
	matcher *classifier.Matcher
	feats   []rules.Rule
	rset    *rules.RuleSet
	risk    *core.Model

	split dataset.Split // train-time split; empty on a Loaded model

	// pool holds *scoreScratch instances sized for this model; see
	// acquireScratch. The zero value works for both Train- and
	// Load-constructed models.
	pool sync.Pool

	// resolvePool holds *resolveScratch instances — a scoreScratch wrapped
	// with candidate-generation and top-k state for the online resolve path
	// (resolve.go). Same ownership rules as pool.
	resolvePool sync.Pool
}

// scoreScratch is one scoring worker's reusable state: the serving metric
// row and its feature-store scratch (reusable prepared values + per-metric
// DP buffers), the classifier's input/activation buffers, and the
// rule-firing bitset with its decoded index form. Steady-state Score and
// ScoreBatch run entirely inside a pooled scoreScratch and perform zero
// heap allocations per pair.
type scoreScratch struct {
	row   []float64
	fs    *featstore.ServeScratch
	prob  *classifier.ProbScratch
	rules *rules.RowScratch
	fired []int
}

// acquireScratch takes a pooled scratch or builds a fresh one sized for
// the model. Pair it with m.pool.Put.
func (m *Model) acquireScratch() *scoreScratch {
	if s, ok := m.pool.Get().(*scoreScratch); ok {
		return s
	}
	return &scoreScratch{
		row:   make([]float64, 0, len(m.cat.Metrics)),
		fs:    featstore.NewServeScratch(m.cat),
		prob:  m.matcher.NewProbScratch(),
		rules: m.rset.NewRowScratch(),
		fired: make([]int, 0, m.rset.NumRules()),
	}
}

// Pair is one candidate record pair presented to the serving path as raw
// attribute values, in the schema order the model was trained on.
type Pair struct {
	Left  []string
	Right []string
}

// PairScore is the serving-path verdict on one candidate pair: the
// classifier's output and induced label, plus the risk analysis of that
// label (the fused equivalence distribution and its VaR mislabeling risk).
type PairScore struct {
	Prob  float64 // classifier equivalence probability
	Match bool    // machine label (Prob >= 0.5)
	Risk  float64 // VaR risk that the machine label is wrong
	Mu    float64 // expectation of the fused equivalence distribution
	Sigma float64 // standard deviation of the fused distribution
}

// schemaAttrs extracts the facade-level schema description of a workload.
func schemaAttrs(w *Workload) []Attr {
	attrs := make([]Attr, len(w.inner.Left.Schema.Attrs))
	for i, a := range w.inner.Left.Schema.Attrs {
		attrs[i] = Attr{Name: a.Name, Type: a.Type.String()}
	}
	return attrs
}

// fingerprintOf hashes the schema (attribute names and types) together with
// the metric catalog layout. Two workloads with the same fingerprint
// produce interchangeable metric rows; everything a Model consumes is
// defined over that row space.
func fingerprintOf(attrs []Attr, metricNames []string) string {
	h := sha256.New()
	for _, a := range attrs {
		io.WriteString(h, a.Name)
		h.Write([]byte{0})
		io.WriteString(h, a.Type)
		h.Write([]byte{1})
	}
	h.Write([]byte{2})
	for _, n := range metricNames {
		io.WriteString(h, n)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// buildCatalog reconstructs the metric catalog for a schema, leaving the
// corpora to be attached by the caller. The construction mirrors
// dataset.Schema.Catalog, so metric names, order and semantics are
// identical to a workload-built catalog.
func buildCatalog(attrs []Attr) (*metrics.Catalog, error) {
	cat := &metrics.Catalog{Corpora: make([]*metrics.Corpus, len(attrs))}
	for i, a := range attrs {
		t, err := parseAttrType(a.Type)
		if err != nil {
			return nil, err
		}
		cat.Metrics = append(cat.Metrics, metrics.ForAttribute(a.Name, i, t)...)
	}
	return cat, nil
}

// Train runs the model-building half of the LearnRisk pipeline on the
// workload: split by ratio, train the classifier on the training part,
// generate risk features from it, and fit the risk model on the validation
// part. The result is a reusable artifact — evaluate it with Evaluate,
// serve it with Score/ScoreBatch, persist it with Save.
//
// The context is plumbed through classifier training, rule generation and
// risk-model fitting, each of which checks it between epochs (or tree
// nodes): a canceled context aborts Train with an error satisfying
// errors.Is(err, ctx.Err()). opts.Progress, when set, receives coarse
// progress per stage.
//
// All basic-metric computation flows through a workload-level feature store
// (internal/featstore): each pair's metric row is computed exactly once and
// every stage reads views of it.
func Train(ctx context.Context, w *Workload, opts Options) (*Model, error) {
	m, _, err := trainWithStore(ctx, w, opts)
	return m, err
}

// trainWithStore is Train, additionally returning the feature store it
// filled, so Run can evaluate the test split without re-preparing records
// shared across splits (the prepare-once contract of internal/featstore).
func trainWithStore(ctx context.Context, w *Workload, opts Options) (*Model, *featstore.Store, error) {
	opts = opts.withDefaults()
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	split, err := w.inner.SplitPairs(opts.SplitRatio, opts.Seed)
	if err != nil {
		return nil, nil, err
	}

	store := featstore.New(w.inner, w.cat)
	trainX := store.Rows(split.Train)
	matcher, err := classifier.TrainRowsCtx(ctx, w.inner, w.cat, split.Train, trainX, classifier.Config{
		Epochs: opts.ClassifierEpochs, Seed: opts.Seed,
	}, stageProgress(opts.Progress, "classifier"))
	if err != nil {
		return nil, nil, fmt.Errorf("learnrisk: classifier training: %w", err)
	}

	// Risk features from the classifier training data (Section 5).
	trainY := make([]bool, len(split.Train))
	for k, i := range split.Train {
		trainY[k] = w.inner.Pairs[i].Match
	}
	feats, err := dtree.GenerateRiskFeaturesCtx(ctx, trainX, trainY, w.cat.Names(), dtree.OneSidedConfig{
		MaxDepth: opts.RuleDepth,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("learnrisk: rule generation: %w", err)
	}
	if opts.Progress != nil {
		opts.Progress("rules", 1, 1)
	}
	rset, err := rules.Compile(feats, store.Width())
	if err != nil {
		return nil, nil, fmt.Errorf("learnrisk: rule compilation: %w", err)
	}
	stats := rset.Stats(trainX, trainY)
	riskModel, err := core.New(core.BuildFeatures(feats, stats), core.Config{
		Theta: opts.VaRConfidence, Epochs: opts.RiskEpochs, Seed: opts.Seed,
	})
	if err != nil {
		return nil, nil, err
	}

	// Risk-model training on the validation part (Section 4.3).
	validX := store.Rows(split.Valid)
	validLab := matcher.LabelRows(w.inner, split.Valid, validX)
	validInsts, validBad := core.BuildInstances(rset.Apply(validX), validLab)
	err = riskModel.FitCtx(ctx, validInsts, validBad, stageProgress(opts.Progress, "risk"))
	if err != nil && !errors.Is(err, core.ErrNoTrainingSignal) {
		return nil, nil, fmt.Errorf("learnrisk: risk training: %w", err)
	}

	attrs := schemaAttrs(w)
	// The artifact must not pin whatever the training-side Progress closure
	// captured; the callback belongs to the Train call, not the model.
	opts.Progress = nil
	return &Model{
		attrs:   attrs,
		fp:      fingerprintOf(attrs, w.cat.Names()),
		opts:    opts,
		cat:     w.cat,
		matcher: matcher,
		feats:   feats,
		rset:    rset,
		risk:    riskModel,
		split:   split,
	}, store, nil
}

// stageProgress adapts the Options callback to one stage's epoch stream.
func stageProgress(fn func(stage string, done, total int), stage string) func(done, total int) {
	if fn == nil {
		return nil
	}
	return func(done, total int) { fn(stage, done, total) }
}

// Fingerprint returns the schema fingerprint the model is bound to. Every
// workload whose schema hashes to the same fingerprint can be evaluated and
// served by this model.
func (m *Model) Fingerprint() string { return m.fp }

// Options returns the resolved options the model was trained with (zero
// fields replaced by defaults). For a Loaded model these are the original
// training options.
func (m *Model) Options() Options { return m.opts }

// Features renders the model's risk features, strongest support first.
func (m *Model) Features() []string {
	out := make([]string, len(m.feats))
	for i := range m.feats {
		out[i] = m.feats[i].String()
	}
	return out
}

// NumFeatures returns the number of rule risk features.
func (m *Model) NumFeatures() int { return len(m.feats) }

// TrainPairs, ValidPairs and TestPairs return the pair indices of the split
// computed at Train time, as fresh copies (mutating them cannot corrupt the
// model). They are nil on a model restored by Load — the split belongs to
// the training workload, not to the artifact.
func (m *Model) TrainPairs() []int { return append([]int(nil), m.split.Train...) }

// ValidPairs returns a copy of the validation-part pair indices of the
// train-time split (nil on a Loaded model).
func (m *Model) ValidPairs() []int { return append([]int(nil), m.split.Valid...) }

// TestPairs returns a copy of the test-part pair indices of the train-time
// split (nil on a Loaded model).
func (m *Model) TestPairs() []int { return append([]int(nil), m.split.Test...) }

// CompatibleWith reports whether the workload's schema fingerprint matches
// the model's, returning a descriptive error when it does not.
func (m *Model) CompatibleWith(w *Workload) error {
	got := fingerprintOf(schemaAttrs(w), w.cat.Names())
	if got != m.fp {
		return fmt.Errorf("learnrisk: workload %q schema fingerprint %s does not match the model's %s — the model was trained on a different schema",
			w.Name(), got[:12], m.fp[:12])
	}
	return nil
}

// Evaluate labels the given workload pairs with the model's classifier,
// risk-scores those labels, and returns the full Report — the same ranking,
// quality metrics and explanations Run produces for its test split. The
// workload must carry the model's schema (checked by fingerprint). Metric
// rows are computed under the model's training catalog, so a model
// evaluated on a second workload of the same schema sees it through the
// corpora it was trained with — exactly the serving semantics.
func (m *Model) Evaluate(w *Workload, idx []int) (*Report, error) {
	if err := m.CompatibleWith(w); err != nil {
		return nil, err
	}
	if len(idx) == 0 {
		return nil, errors.New("learnrisk: Evaluate needs at least one pair index")
	}
	for _, i := range idx {
		if i < 0 || i >= w.Size() {
			return nil, fmt.Errorf("learnrisk: pair index %d outside workload of %d pairs", i, w.Size())
		}
	}
	return m.evaluateOn(w, idx, featstore.New(w.inner, m.cat))
}

// evaluateOn is Evaluate over a caller-supplied store (Run passes the
// train-time store so records shared across splits stay prepared once).
func (m *Model) evaluateOn(w *Workload, idx []int, store *featstore.Store) (*Report, error) {
	testX := store.Rows(idx)
	testLab := m.matcher.LabelRows(w.inner, idx, testX)
	fired := m.rset.Apply(testX)
	return m.assembleReport(testLab, fired), nil
}

// coveredFraction is rules.RuleSet.Coverage over precomputed firing sets:
// the fraction of rows on which at least one rule fires, with the same
// zero-rows convention and the same integer-to-float division. The
// streaming evaluation computes firings row by row and so never holds the
// metric rows Coverage would need.
func coveredFraction(fired [][]int) float64 {
	if len(fired) == 0 {
		return 0
	}
	covered := 0
	for _, f := range fired {
		if len(f) > 0 {
			covered++
		}
	}
	return float64(covered) / float64(len(fired))
}

// assembleReport builds the Report from a labeling and its firing sets —
// the shared tail of the materialized and streaming evaluation paths. Both
// feed it identical inputs for the same pairs, so the reports (ranking
// order included) are byte-identical.
func (m *Model) assembleReport(testLab classifier.Labeled, fired [][]int) *Report {
	testInsts, testBad := core.BuildInstances(fired, testLab)
	risks := m.risk.RiskAll(testInsts)

	rep := &Report{
		AUROC:              eval.AUROC(risks, testBad),
		ClassifierF1:       testLab.F1(),
		ClassifierAccuracy: testLab.Accuracy(),
		Mislabels:          testLab.MislabelCount(),
		NumFeatures:        len(m.feats),
		RuleCoverage:       coveredFraction(fired),
		model:              m.risk,
		features:           m.feats,
		artifact:           m,
		insts:              make(map[int]core.Instance, len(testInsts)),
	}
	for k := range testInsts {
		rep.insts[testLab.Idx[k]] = testInsts[k]
		rep.Ranking = append(rep.Ranking, RankedPair{
			PairIndex:  testLab.Idx[k],
			Risk:       risks[k],
			Prob:       testLab.Prob[k],
			Match:      testLab.Label[k],
			Mislabeled: testBad[k],
		})
	}
	sort.SliceStable(rep.Ranking, func(a, b int) bool {
		return rep.Ranking[a].Risk > rep.Ranking[b].Risk
	})
	return rep
}

// ErrPairArity marks a serving-path pair whose value count does not match
// the model's schema. Serving layers classify it with errors.Is (a client
// error, not a server fault); every CheckPair failure wraps it.
var ErrPairArity = errors.New("pair does not match the model schema arity")

// CheckPair validates a serving-path pair against the model's schema
// arity, so a truncated or misaligned record fails loudly instead of being
// scored against empty-padded values. Serving front ends (internal/server)
// use it to reject a bad request before it joins a batch, keeping one
// malformed pair from failing the whole ScoreBatch call. Failures wrap
// ErrPairArity.
func (m *Model) CheckPair(p Pair) error {
	if len(p.Left) != len(m.attrs) || len(p.Right) != len(m.attrs) {
		return fmt.Errorf("learnrisk: pair has %d/%d attribute values, model schema has %d (%s...): %w",
			len(p.Left), len(p.Right), len(m.attrs), m.attrs[0].Name, ErrPairArity)
	}
	return nil
}

// checkPair is the historical unexported spelling, kept so the scoring
// paths read unchanged.
func (m *Model) checkPair(p Pair) error { return m.CheckPair(p) }

// Schema returns the attribute schema the model was trained on, as a fresh
// copy (mutating it cannot corrupt the model). Serving endpoints report it
// so clients know the order and arity of the values a Pair must carry.
func (m *Model) Schema() []Attr { return append([]Attr(nil), m.attrs...) }

// EnvelopeVersion returns the Save/Load envelope version this build reads
// and writes. Serving endpoints report it next to the fingerprint so an
// operator can tell which artifact generation a replica is running.
func (m *Model) EnvelopeVersion() int { return modelVersion }

// Score risk-scores one fresh candidate pair: the metric row is computed
// under the model's catalog (the metrics.Prepared fast path), the
// classifier labels it, the compiled rules fire on it, and the risk model
// assesses the label. The pair must carry one value per schema attribute.
// No ground truth is consulted and nothing is retrained. Safe for
// concurrent use.
//
// Steady state performs zero heap allocations: every buffer the pair's
// evaluation touches lives in a pooled scoreScratch.
func (m *Model) Score(p Pair) (PairScore, error) {
	if err := m.checkPair(p); err != nil {
		return PairScore{}, err
	}
	s := m.acquireScratch()
	out := m.scorePair(p, s)
	m.pool.Put(s)
	return out, nil
}

// scoreBatchChunk is the shard granularity of ScoreBatch: small enough
// that a micro-batcher flush (default 64 pairs) spreads across cores,
// large enough that the per-chunk scratch checkout and the one-pair side
// cache still amortize.
const scoreBatchChunk = 16

// ScoreBatch risk-scores a batch of fresh candidate pairs, sharding the
// batch across GOMAXPROCS workers (internal/par). Each worker scores its
// chunk through a pooled scoreScratch, so steady state allocates nothing
// per pair — only the result slice per call. Results are bit-identical to
// per-pair Score calls, in input order, at any GOMAXPROCS. Safe for
// concurrent use.
func (m *Model) ScoreBatch(pairs []Pair) ([]PairScore, error) {
	for i, p := range pairs {
		if err := m.checkPair(p); err != nil {
			return nil, fmt.Errorf("pair %d: %w", i, err)
		}
	}
	out := make([]PairScore, len(pairs))
	par.ForChunks(len(pairs), scoreBatchChunk, func(_, lo, hi int) {
		s := m.acquireScratch()
		for i := lo; i < hi; i++ {
			out[i] = m.scorePair(pairs[i], s)
		}
		m.pool.Put(s)
	})
	return out, nil
}

// scorePair evaluates one (already arity-checked) pair inside a scratch.
//
//vetkit:hotpath
func (m *Model) scorePair(p Pair, s *scoreScratch) PairScore {
	s.row = featstore.ComputeRowAppend(m.cat, s.row[:0], p.Left, p.Right, s.fs)
	inst := m.instFromRow(s.row, s)
	a := m.risk.Assess(inst)
	return PairScore{Prob: inst.Prob, Match: inst.Label, Risk: a.Risk, Mu: a.Mu, Sigma: a.Sigma}
}

// instFromRow is the one place a metric row becomes a risk-model instance:
// classifier output, induced machine label, fired rule set. Score,
// ScoreBatch and ExplainPair all share it, so labels and explanations can
// never disagree. The instance's Fired slice aliases the scratch and is
// valid until the scratch's next use.
//
//vetkit:hotpath
func (m *Model) instFromRow(row []float64, s *scoreScratch) core.Instance {
	prob := m.matcher.ProbRowScratch(row, s.prob)
	m.rset.ApplyRowBitset(row, s.rules)
	s.fired = s.rules.AppendFired(s.fired[:0])
	return core.Instance{
		Fired: s.fired,
		Prob:  prob,
		Label: prob >= 0.5,
	}
}

// ExplainPair returns the interpretable decomposition of a fresh pair's
// risk: each contributing risk feature with its weight share in the pair's
// portfolio, most influential first. Safe for concurrent use.
func (m *Model) ExplainPair(p Pair) ([]string, error) {
	if err := m.checkPair(p); err != nil {
		return nil, err
	}
	s := m.acquireScratch()
	s.row = featstore.ComputeRowAppend(m.cat, s.row[:0], p.Left, p.Right, s.fs)
	inst := m.instFromRow(s.row, s)
	var out []string
	for _, c := range m.risk.Explain(inst) {
		out = append(out, fmt.Sprintf("share=%.2f mu=%.3f sigma=%.3f  %s",
			c.Share, c.Mu, c.Sigma, c.Description))
	}
	m.pool.Put(s)
	return out, nil
}

// modelVersion is the artifact envelope version. Bump it on any change to
// the envelope layout or to the semantics of its fields.
const modelVersion = 1

// modelEnvelope is the on-disk form of a Model: a versioned JSON envelope
// carrying the schema, its fingerprint, the training corpora, the matcher
// weights, the risk features, and the fitted risk model. Raw parameters are
// stored everywhere, so a round trip is bit-exact.
type modelEnvelope struct {
	Version     int                        `json:"version"`
	Fingerprint string                     `json:"fingerprint"`
	Attrs       []Attr                     `json:"attrs"`
	Options     Options                    `json:"options"`
	Corpora     []metrics.CorpusSnapshot   `json:"corpora"`
	Matcher     classifier.MatcherSnapshot `json:"matcher"`
	Rules       []rules.Rule               `json:"rules"`
	Risk        json.RawMessage            `json:"risk"`
}

// Save writes the model as a versioned JSON envelope. The artifact is
// self-contained: Load rebuilds a model that scores bit-identically
// anywhere, without the training workload.
func (m *Model) Save(w io.Writer) error {
	var riskBuf bytes.Buffer
	if err := m.risk.Save(&riskBuf); err != nil {
		return fmt.Errorf("learnrisk: saving risk model: %w", err)
	}
	env := modelEnvelope{
		Version:     modelVersion,
		Fingerprint: m.fp,
		Attrs:       m.attrs,
		Options:     m.opts,
		Corpora:     make([]metrics.CorpusSnapshot, len(m.cat.Corpora)),
		Matcher:     m.matcher.Snapshot(),
		Rules:       m.feats,
		Risk:        json.RawMessage(riskBuf.Bytes()),
	}
	for i, c := range m.cat.Corpora {
		snap := c.Snapshot()
		// JSON silently coerces invalid UTF-8 in map keys to U+FFFD, which
		// would break the bit-identical round trip without any error — so a
		// corpus holding non-UTF-8 tokens (e.g. from a Latin-1 CSV) refuses
		// to serialize instead of diverging after Load.
		for tok := range snap.DF {
			if !utf8.ValidString(tok) {
				return fmt.Errorf("learnrisk: attribute %q corpus holds a non-UTF-8 token (%q); re-encode the source data as UTF-8 before training a persistent model",
					m.attrs[i].Name, tok)
			}
		}
		env.Corpora[i] = snap
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(env)
}

// Load reads a model written by Save. The schema fingerprint stored in the
// envelope is recomputed from the envelope's own schema and must match —
// a mismatch means the artifact was corrupted or assembled against a
// different schema, and fails loudly. The loaded model scores
// bit-identically to the saved one.
func Load(r io.Reader) (*Model, error) {
	var env modelEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("learnrisk: decoding model: %w", err)
	}
	if env.Version != modelVersion {
		return nil, fmt.Errorf("learnrisk: unsupported model version %d (this build reads version %d)", env.Version, modelVersion)
	}
	if len(env.Attrs) == 0 {
		return nil, errors.New("learnrisk: model envelope has no schema attributes")
	}
	cat, err := buildCatalog(env.Attrs)
	if err != nil {
		return nil, fmt.Errorf("learnrisk: rebuilding catalog: %w", err)
	}
	if len(env.Corpora) != len(cat.Corpora) {
		return nil, fmt.Errorf("learnrisk: model envelope has %d corpora for %d attributes", len(env.Corpora), len(cat.Corpora))
	}
	for i, s := range env.Corpora {
		cat.Corpora[i] = metrics.RestoreCorpus(s)
	}
	fp := fingerprintOf(env.Attrs, cat.Names())
	if fp != env.Fingerprint {
		return nil, fmt.Errorf("learnrisk: schema fingerprint mismatch: envelope claims %s but its schema hashes to %s — refusing to load",
			short(env.Fingerprint), short(fp))
	}
	matcher, err := classifier.RestoreMatcher(cat, env.Matcher)
	if err != nil {
		return nil, fmt.Errorf("learnrisk: restoring matcher: %w", err)
	}
	rset, err := rules.Compile(env.Rules, len(cat.Metrics))
	if err != nil {
		return nil, fmt.Errorf("learnrisk: recompiling rules: %w", err)
	}
	risk, err := core.Load(bytes.NewReader(env.Risk))
	if err != nil {
		return nil, fmt.Errorf("learnrisk: restoring risk model: %w", err)
	}
	return &Model{
		attrs:   env.Attrs,
		fp:      fp,
		opts:    env.Options,
		cat:     cat,
		matcher: matcher,
		feats:   env.Rules,
		rset:    rset,
		risk:    risk,
	}, nil
}

// LoadFile is Load over a file path: it opens the artifact, restores the
// model and closes the file. The hot-swap reload path of internal/server
// uses it; anything with an io.Reader in hand should call Load directly.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("learnrisk: opening model artifact: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// short clips a fingerprint for error rendering.
func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	if fp == "" {
		return "(empty)"
	}
	return fp
}
