package learnrisk

import (
	"math/rand"
	"testing"

	"repro/internal/match"
)

// TestResolvePartitionedMatchesFlat is the cross-layer equivalence proof
// on the real model: a partitioned store and a flat store fed the same
// interleaved adds and deletes must answer every probe with the identical
// ranked verdicts — IDs, order and score bits — including under an
// aggressive MaxBlockSize where the router's census decides the pruning.
func TestResolvePartitionedMatchesFlat(t *testing.T) {
	w, m := trainedModel(t)
	right := w.inner.Right.Records
	for _, tc := range []struct {
		parts int
		cfg   MatchConfig
	}{
		{parts: 1, cfg: MatchConfig{}},
		{parts: 4, cfg: MatchConfig{}},
		{parts: 3, cfg: MatchConfig{MaxBlockSize: 4}},
	} {
		flat, err := m.NewMatchStore(tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := m.NewPartitionedMatchStore(tc.parts, 2, tc.cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(tc.parts)))
		for i, r := range right {
			fid, err := flat.Add(r.Values)
			if err != nil {
				t.Fatal(err)
			}
			pid, err := ps.Add(r.Values)
			if err != nil {
				t.Fatal(err)
			}
			if fid != pid {
				t.Fatalf("parts=%d: record %d got flat ID %d, partitioned ID %d", tc.parts, i, fid, pid)
			}
			// Interleave deletes so tombstoned postings and census
			// decrements are part of what the equivalence covers.
			if i%7 == 3 {
				id := uint64(rng.Intn(i + 1))
				if _, err := ps.Delete(id); err != nil {
					t.Fatal(err)
				}
				flat.Delete(id)
			}
		}
		for li := 0; li < len(w.inner.Left.Records) && li < 20; li++ {
			probe := w.inner.Left.Records[li].Values
			want, err := m.Resolve(flat, probe, 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.ResolvePartitioned(ps, probe, 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("parts=%d probe %d: got %d results, want %d\ngot:  %v\nwant: %v",
					tc.parts, li, len(got), len(want), got, want)
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("parts=%d probe %d result %d diverged\ngot:  %+v\nwant: %+v",
						tc.parts, li, i, got[i], want[i])
				}
			}
		}
	}
}

// TestResolveShardHonorsSkip pins the scorer leg the router calls: a skip
// list must remove exactly the skipped tokens' contribution, like local
// stop-token pruning would.
func TestResolveShardHonorsSkip(t *testing.T) {
	_, m, st, _ := resolveFixture(t)
	probe := make([]string, st.Arity())
	for i := range probe {
		probe[i] = "zz-unindexed"
	}
	// Build a skip list of every token the probe would use by pruning
	// everything: with all probe tokens skipped, no candidates survive.
	var skip []string
	if err := st.DistinctTokens(probe, func(tok string) { skip = append(skip, tok) }); err != nil {
		t.Fatal(err)
	}
	got, err := m.ResolveShard(st, probe, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = got
	pruned, err := m.ResolveShard(st, probe, 5, skip)
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) != 0 {
		t.Fatalf("fully skipped probe still returned %v", pruned)
	}
}

// TestResolvePartitionedValidation covers the partitioned facade's error
// paths.
func TestResolvePartitionedValidation(t *testing.T) {
	_, m := trainedModel(t)
	if _, err := m.ResolvePartitioned(nil, []string{"x"}, 5); err == nil {
		t.Error("nil store accepted")
	}
	ps, err := m.NewPartitionedMatchStore(2, 1, MatchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bad := make([]string, ps.Arity()+1)
	if _, err := m.ResolvePartitioned(ps, bad, 5); err == nil {
		t.Error("arity-mismatched probe accepted")
	}
	wrongStore, err := match.New(ps.Arity()+1, match.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.ResolveShard(wrongStore, bad, 5, nil); err == nil {
		t.Error("arity-mismatched shard store accepted")
	}
}
