package learnrisk

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The golden regression test pins the full pipeline's observable output on
// a committed fixture workload: every future PR — especially performance
// work — proves bit-identical behavior by leaving testdata/golden/report.json
// untouched. Regenerate deliberately after an intended behavior change:
//
//	go test -run TestGoldenReport -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden/report.json from the current pipeline output")

// goldenOptions pins the training configuration of the golden run. Changing
// any of these is a behavior change and demands a golden refresh.
func goldenOptions() Options {
	return Options{SplitRatio: "3:2:5", RiskEpochs: 150, ClassifierEpochs: 15, Seed: 7}
}

// goldenRanked is one ranking row in the golden file.
type goldenRanked struct {
	PairIndex  int     `json:"pair_index"`
	Risk       float64 `json:"risk"`
	Prob       float64 `json:"prob"`
	Match      bool    `json:"match"`
	Mislabeled bool    `json:"mislabeled"`
}

// goldenReport is the pinned shape of a full Run: workload statistics,
// report scalars, the complete risk-ordered ranking, the generated rule
// features, and the triage outcome of a fixed human budget.
type goldenReport struct {
	WorkloadPairs   int            `json:"workload_pairs"`
	WorkloadMatches int            `json:"workload_matches"`
	AUROC           float64        `json:"auroc"`
	ClassifierF1    float64        `json:"classifier_f1"`
	ClassifierAcc   float64        `json:"classifier_accuracy"`
	Mislabels       int            `json:"mislabels"`
	NumFeatures     int            `json:"num_features"`
	RuleCoverage    float64        `json:"rule_coverage"`
	Features        []string       `json:"features"`
	Ranking         []goldenRanked `json:"ranking"`
	TriageBudget    int            `json:"triage_budget"`
	Triage          TriageOutcome  `json:"triage"`
}

// goldenWorkload loads the committed fixture CSVs.
func goldenWorkload(t *testing.T) *Workload {
	t.Helper()
	dir := filepath.Join("testdata", "golden")
	w, err := LoadCSV("golden-DS",
		filepath.Join(dir, "left.csv"),
		filepath.Join(dir, "right.csv"),
		filepath.Join(dir, "pairs.csv"),
		[]Attr{
			{Name: "title", Type: "text"},
			{Name: "authors", Type: "entity-set"},
			{Name: "venue", Type: "entity-name"},
			{Name: "year", Type: "numeric"},
		})
	if err != nil {
		t.Fatalf("loading golden fixture: %v", err)
	}
	return w
}

// currentGolden runs the pipeline on the fixture and renders the golden
// shape.
func currentGolden(t *testing.T) goldenReport {
	t.Helper()
	w := goldenWorkload(t)
	rep, err := Run(w, goldenOptions())
	if err != nil {
		t.Fatalf("golden run: %v", err)
	}
	const budget = 20
	triage, err := rep.Triage(budget)
	if err != nil {
		t.Fatalf("golden triage: %v", err)
	}
	g := goldenReport{
		WorkloadPairs:   w.Size(),
		WorkloadMatches: w.Matches(),
		AUROC:           rep.AUROC,
		ClassifierF1:    rep.ClassifierF1,
		ClassifierAcc:   rep.ClassifierAccuracy,
		Mislabels:       rep.Mislabels,
		NumFeatures:     rep.NumFeatures,
		RuleCoverage:    rep.RuleCoverage,
		Features:        rep.Features(),
		TriageBudget:    budget,
		Triage:          triage,
	}
	for _, rp := range rep.Ranking {
		g.Ranking = append(g.Ranking, goldenRanked{
			PairIndex: rp.PairIndex, Risk: rp.Risk, Prob: rp.Prob,
			Match: rp.Match, Mislabeled: rp.Mislabeled,
		})
	}
	return g
}

const goldenPath = "testdata/golden/report.json"

func TestGoldenReport(t *testing.T) {
	got := currentGolden(t)
	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d ranked pairs)", goldenPath, len(got.Ranking))
		return
	}
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading %s (run `go test -run TestGoldenReport -update .` to create it): %v", goldenPath, err)
	}
	var want goldenReport
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}

	// Scalars first, for focused failure messages.
	if got.WorkloadPairs != want.WorkloadPairs || got.WorkloadMatches != want.WorkloadMatches {
		t.Errorf("workload shape %d/%d, golden %d/%d",
			got.WorkloadPairs, got.WorkloadMatches, want.WorkloadPairs, want.WorkloadMatches)
	}
	if got.AUROC != want.AUROC {
		t.Errorf("AUROC %v, golden %v", got.AUROC, want.AUROC)
	}
	if got.ClassifierF1 != want.ClassifierF1 || got.ClassifierAcc != want.ClassifierAcc {
		t.Errorf("classifier F1/acc %v/%v, golden %v/%v",
			got.ClassifierF1, got.ClassifierAcc, want.ClassifierF1, want.ClassifierAcc)
	}
	if got.Mislabels != want.Mislabels || got.NumFeatures != want.NumFeatures || got.RuleCoverage != want.RuleCoverage {
		t.Errorf("mislabels/features/coverage %d/%d/%v, golden %d/%d/%v",
			got.Mislabels, got.NumFeatures, got.RuleCoverage,
			want.Mislabels, want.NumFeatures, want.RuleCoverage)
	}
	if !reflect.DeepEqual(got.Features, want.Features) {
		t.Errorf("risk features drifted:\n got %v\nwant %v", got.Features, want.Features)
	}
	if len(got.Ranking) != len(want.Ranking) {
		t.Fatalf("ranking has %d pairs, golden %d", len(got.Ranking), len(want.Ranking))
	}
	for i := range want.Ranking {
		if got.Ranking[i] != want.Ranking[i] {
			t.Errorf("ranking[%d] = %+v, golden %+v", i, got.Ranking[i], want.Ranking[i])
			if i > 3 {
				t.Fatal("(further ranking diffs suppressed)")
			}
		}
	}
	if got.Triage != want.Triage || got.TriageBudget != want.TriageBudget {
		t.Errorf("triage %+v (budget %d), golden %+v (budget %d)",
			got.Triage, got.TriageBudget, want.Triage, want.TriageBudget)
	}
}

// TestGoldenRunIsDeterministic guards the golden file's premise: two runs
// on the fixture with the pinned options are identical, so a golden
// mismatch always means a behavior change, never nondeterminism.
func TestGoldenRunIsDeterministic(t *testing.T) {
	a := currentGolden(t)
	b := currentGolden(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical golden runs disagree — the pipeline is nondeterministic")
	}
}
