package learnrisk

import (
	"bytes"
	"strings"
	"testing"
)

func triageReport(t *testing.T) *Report {
	t.Helper()
	w, err := Generate("DS", 0.02, 13)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(w, Options{RiskEpochs: 200, ClassifierEpochs: 20, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mislabels == 0 {
		t.Skip("no mislabels to triage in this configuration")
	}
	return rep
}

func TestTriage(t *testing.T) {
	rep := triageReport(t)
	budget := len(rep.Ranking) / 10
	o, err := rep.Triage(budget)
	if err != nil {
		t.Fatal(err)
	}
	if o.Budget != budget {
		t.Errorf("budget = %d, want %d", o.Budget, budget)
	}
	if o.AccAfter < o.AccBefore {
		t.Errorf("verification lowered accuracy: %f -> %f", o.AccBefore, o.AccAfter)
	}
	// A working risk ranking concentrates mislabels into the budget: the
	// top decile should fix more than a proportional share.
	proportional := float64(rep.Mislabels) * float64(budget) / float64(len(rep.Ranking))
	if float64(o.Corrected) < proportional {
		t.Errorf("corrected %d below proportional share %.1f — ranking not concentrating risk",
			o.Corrected, proportional)
	}
}

func TestBudgetCurveAndMinBudget(t *testing.T) {
	rep := triageReport(t)
	n := len(rep.Ranking)
	curve, err := rep.BudgetCurve([]int{0, n / 20, n / 10, n / 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].AccAfter < curve[i-1].AccAfter-1e-12 {
			t.Error("budget curve not monotone")
		}
	}
	target := curve[0].AccBefore + (1-curve[0].AccBefore)/2
	budget, ok, err := rep.MinBudgetForAccuracy(target)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("midway target %.3f unreachable", target)
	}
	if budget <= 0 || budget > n {
		t.Errorf("budget %d out of range", budget)
	}
	// Full correctness is reachable by verifying everything.
	full, ok, err := rep.MinBudgetForAccuracy(1.0)
	if err != nil || !ok {
		t.Fatalf("perfect target: ok=%v err=%v", ok, err)
	}
	if full < budget {
		t.Errorf("perfect budget %d below midway budget %d", full, budget)
	}
}

func TestSaveModelFromReport(t *testing.T) {
	rep := triageReport(t)
	var buf bytes.Buffer
	if err := rep.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{`"version"`, `"features"`, `"rho"`} {
		if !strings.Contains(s, want) {
			t.Errorf("saved model missing %q", want)
		}
	}
}
