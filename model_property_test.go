package learnrisk

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
)

// Property tests for the Save/Load envelope: any model the trainer can
// produce must round-trip bit-identically, and any damaged envelope must
// fail loudly with an error — never a panic, never a silently different
// model.

// fuzzedOptions draws a valid Options from the whole documented space.
func fuzzedOptions(rng *rand.Rand) Options {
	ratios := []string{"", "3:2:5", "2:2:6", "4:3:3"}
	return Options{
		SplitRatio:       ratios[rng.IntN(len(ratios))],
		VaRConfidence:    0.75 + 0.2*rng.Float64(),
		RuleDepth:        1 + rng.IntN(4),
		RiskEpochs:       40 + rng.IntN(120),
		ClassifierEpochs: 5 + rng.IntN(12),
		Seed:             1 + rng.Uint64()%1000,
	}
}

// fuzzedPair perturbs workload values into "fresh" serving pairs: values
// are recombined across records and sometimes mutated or emptied, the
// shapes real traffic shows a model.
func fuzzedPair(rng *rand.Rand, w *Workload) Pair {
	n := w.Size()
	l, _ := w.PairValues(rng.IntN(n))
	_, r := w.PairValues(rng.IntN(n))
	mutate := func(vals []string) []string {
		out := append([]string(nil), vals...)
		for i := range out {
			switch rng.IntN(6) {
			case 0:
				out[i] = ""
			case 1:
				out[i] = out[i] + " extra token"
			case 2:
				if len(out[i]) > 3 {
					out[i] = out[i][:len(out[i])/2]
				}
			}
		}
		return out
	}
	return Pair{Left: mutate(l), Right: mutate(r)}
}

func TestSaveLoadPropertyRoundTrip(t *testing.T) {
	profiles := []string{"DS", "AB"}
	rng := rand.New(rand.NewPCG(99, 7))
	for trial := 0; trial < 3; trial++ {
		opts := fuzzedOptions(rng)
		profile := profiles[trial%len(profiles)]
		t.Run(fmt.Sprintf("%s/trial%d", profile, trial), func(t *testing.T) {
			w, err := Generate(profile, 0.015, 100+uint64(trial))
			if err != nil {
				t.Fatal(err)
			}
			m, err := Train(context.Background(), w, opts)
			if err != nil {
				t.Fatalf("training with %+v: %v", opts, err)
			}
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatalf("saving: %v", err)
			}
			loaded, err := Load(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("loading: %v", err)
			}
			if loaded.Fingerprint() != m.Fingerprint() {
				t.Fatalf("fingerprint drifted across round trip")
			}
			if loaded.EnvelopeVersion() != m.EnvelopeVersion() {
				t.Fatalf("envelope version drifted")
			}

			// Score parity on random raw pairs, single and batched.
			var pairs []Pair
			for i := 0; i < 40; i++ {
				pairs = append(pairs, fuzzedPair(rng, w))
			}
			for i, p := range pairs {
				want, err1 := m.Score(p)
				got, err2 := loaded.Score(p)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("pair %d: error parity broke: %v vs %v", i, err1, err2)
				}
				if got != want {
					t.Fatalf("pair %d: loaded score %+v != original %+v", i, got, want)
				}
			}
			wantB, err := m.ScoreBatch(pairs)
			if err != nil {
				t.Fatal(err)
			}
			gotB, err := loaded.ScoreBatch(pairs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantB {
				if gotB[i] != wantB[i] {
					t.Fatalf("batch pair %d: loaded %+v != original %+v", i, gotB[i], wantB[i])
				}
			}

			// A second round trip is byte-identical: Save(Load(Save(m)))
			// has no drift anywhere.
			var buf2 bytes.Buffer
			if err := loaded.Save(&buf2); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("second Save differs from first: the envelope is lossy somewhere")
			}
		})
	}
}

// savedEnvelope trains one small model and returns its envelope bytes,
// cached across corruption subtests.
func savedEnvelope(t *testing.T) []byte {
	t.Helper()
	_, m := trainedModel(t)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadTruncatedEnvelope(t *testing.T) {
	env := savedEnvelope(t)
	// Every truncation point must produce an error, not a panic and not a
	// silently short-changed model.
	for _, frac := range []float64{0, 0.01, 0.1, 0.5, 0.9, 0.999} {
		n := int(frac * float64(len(env)))
		_, err := Load(bytes.NewReader(env[:n]))
		if err == nil {
			t.Errorf("truncation to %d/%d bytes loaded successfully", n, len(env))
		} else if !strings.Contains(err.Error(), "learnrisk:") {
			t.Errorf("truncation to %d bytes: error %q is not a learnrisk-typed error", n, err)
		}
	}
}

func TestLoadFlippedBytesNeverPanic(t *testing.T) {
	env := savedEnvelope(t)
	rng := rand.New(rand.NewPCG(4, 2))
	for trial := 0; trial < 200; trial++ {
		corrupt := append([]byte(nil), env...)
		// Flip 1-4 random bytes anywhere in the envelope.
		for k := 0; k <= rng.IntN(4); k++ {
			corrupt[rng.IntN(len(corrupt))] ^= byte(1 + rng.IntN(255))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Load panicked on corrupted envelope: %v", trial, r)
				}
			}()
			m, err := Load(bytes.NewReader(corrupt))
			// A flip inside a free-text field can legitimately survive; a
			// loaded model must at least still serve without panicking.
			if err == nil && m == nil {
				t.Fatalf("trial %d: no error and no model", trial)
			}
		}()
	}
}

// corruptField re-marshals the envelope with one top-level field replaced,
// keeping everything else intact.
func corruptField(t *testing.T, env []byte, field string, value any) []byte {
	t.Helper()
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(env, &doc); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(value)
	if err != nil {
		t.Fatal(err)
	}
	doc[field] = raw
	out, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLoadRejectsDamagedEnvelopeFields(t *testing.T) {
	env := savedEnvelope(t)
	cases := []struct {
		name    string
		field   string
		value   any
		wantSub string
	}{
		{"future version", "version", 99, "unsupported model version"},
		{"zero version", "version", 0, "unsupported model version"},
		{"no attrs", "attrs", []Attr{}, "no schema attributes"},
		{"unknown attr type", "attrs", []Attr{{Name: "title", Type: "blob"}}, "unknown attribute type"},
		{"wrong corpora count", "corpora", []any{}, "corpora"},
		{"forged fingerprint", "fingerprint", strings.Repeat("ab", 32), "fingerprint mismatch"},
		{"null risk", "risk", nil, "risk model"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Load(bytes.NewReader(corruptField(t, env, c.field, c.value)))
			if err == nil {
				t.Fatalf("damaged %q loaded successfully", c.field)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not name the damage (want substring %q)", err, c.wantSub)
			}
		})
	}
}

func TestLoadFileErrors(t *testing.T) {
	if _, err := LoadFile("/nonexistent/model.json"); err == nil {
		t.Fatal("missing file should fail")
	} else if !strings.Contains(err.Error(), "learnrisk:") {
		t.Fatalf("error %q is not learnrisk-typed", err)
	}
}
